//! Point-in-time metric snapshots and the strict text exposition codec.
//!
//! [`MetricsSnapshot`] is the diffable scrape artifact: every registered
//! metric's value at one instant, sorted by name. [`MetricsSnapshot::render_text`]
//! serializes it in the workspace's strict text-artifact discipline
//! (versioned header, byte count + FNV-1a 64 checksum over the body,
//! explicit terminator — the same shape as `prosel_mart::model_io` and
//! the learner checkpoints), and [`MetricsSnapshot::parse_text`] is its
//! exact inverse: truncation, bit rot, trailing garbage and version
//! drift are all rejected with a typed [`ExpositionError`]. Gauges are
//! encoded as `f64` hex bit patterns, so the round trip is bit-exact
//! for every value including infinities and NaN payloads.

use crate::metrics::{bucket_lower, bucket_upper, HISTOGRAM_BUCKETS};
use prosel_core::textio::{f64_from_hex, f64_to_hex, fnv64};
use std::fmt;

/// A point-in-time copy of one histogram: the per-bucket counts (see
/// [`crate::metrics::Histogram`] for the bucket geometry) and the sum of
/// all recorded samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket, [`HISTOGRAM_BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty histogram snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; HISTOGRAM_BUCKETS], sum: 0 }
    }

    /// Total samples (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0.0 while empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `[lo, hi]` range of the bucket holding the `q`-quantile
    /// sample (rank `round((count - 1) · q)`). `None` while empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((n - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Some((bucket_lower(i), bucket_upper(i)));
            }
        }
        // Unreachable while counts conserve; be safe anyway.
        Some((0, u64::MAX))
    }

    /// Conservative point estimate of the `q`-quantile (upper bracket
    /// bound; 0 while empty).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map(|(_, hi)| hi).unwrap_or(0)
    }

    /// Element-wise sum — fold per-shard histograms into one
    /// service-wide view.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().zip(&other.buckets).map(|(a, b)| a + b).collect(),
            sum: self.sum + other.sum,
        }
    }

    /// Bucket-wise difference against an earlier snapshot (saturating,
    /// so a restarted counter never underflows).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

/// The value of one scraped metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(f64),
    /// Histogram bucket counts + sum.
    Histogram(HistogramSnapshot),
}

/// One scraped metric: its registered name and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The registry name.
    pub name: String,
    /// The value at scrape time.
    pub value: SampleValue,
}

/// A scrape: every registered metric's value at one instant, sorted by
/// name. Produced by [`crate::MetricsRegistry::snapshot`]; diffable via
/// [`MetricsSnapshot::diff`]; round-trips through
/// [`MetricsSnapshot::render_text`] / [`MetricsSnapshot::parse_text`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The scraped samples, ascending by name.
    pub samples: Vec<Sample>,
}

/// Rejection from [`MetricsSnapshot::parse_text`]: the exposition text
/// was truncated, corrupted, version-drifted, malformed, or carried
/// trailing garbage.
#[derive(Debug)]
pub struct ExpositionError(pub String);

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics exposition rejected: {}", self.0)
    }
}

impl std::error::Error for ExpositionError {}

const HEADER: &str = "prosel-metrics v1";
const FOOTER: &str = "endmetrics";

impl MetricsSnapshot {
    /// Look up one sample by name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value under `name` (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value under `name` (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram under `name` (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name ends with `suffix` — the
    /// conservation-law helper (e.g. fold `monitor_shard<i>_events_ingested`
    /// across shards).
    pub fn sum_counters(&self, suffix: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name.ends_with(suffix))
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Bucket-wise merge of every histogram whose name ends with
    /// `suffix` (e.g. fold per-shard ingest-latency histograms into one
    /// service-wide distribution). `None` when no histogram matches.
    pub fn merge_histograms(&self, suffix: &str) -> Option<HistogramSnapshot> {
        let mut acc: Option<HistogramSnapshot> = None;
        for s in &self.samples {
            if !s.name.ends_with(suffix) {
                continue;
            }
            if let SampleValue::Histogram(h) = &s.value {
                acc = Some(match acc {
                    None => h.clone(),
                    Some(a) => a.merged(h),
                });
            }
        }
        acc
    }

    /// The change since `earlier`: counters and histograms subtract
    /// (saturating), gauges keep their current value. Names absent from
    /// `earlier` pass through unchanged — diffing against an older,
    /// smaller scrape is well-defined.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let value = match (&s.value, earlier.get(&s.name)) {
                    (SampleValue::Counter(v), Some(SampleValue::Counter(e))) => {
                        SampleValue::Counter(v.saturating_sub(*e))
                    }
                    (SampleValue::Histogram(h), Some(SampleValue::Histogram(e))) => {
                        SampleValue::Histogram(h.diff(e))
                    }
                    (v, _) => v.clone(),
                };
                Sample { name: s.name.clone(), value }
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Serialize as a versioned, checksummed text artifact (the exact
    /// inverse of [`Self::parse_text`]). One line per metric:
    ///
    /// ```text
    /// counter <name> <u64>
    /// gauge <name> <f64 hex bits> <display value>
    /// hist <name> sum <u64> buckets <idx>:<count> ...
    /// ```
    ///
    /// Histogram lines carry only the non-zero buckets; gauge lines
    /// carry both the bit-exact hex encoding (authoritative) and a
    /// human-readable rendering (ignored by the parser).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut body = String::new();
        for s in &self.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(body, "counter {} {v}", s.name);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(body, "gauge {} {} {v}", s.name, f64_to_hex(*v));
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(body, "hist {} sum {} buckets", s.name, h.sum);
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c > 0 {
                            let _ = write!(body, " {i}:{c}");
                        }
                    }
                    body.push('\n');
                }
            }
        }
        format!(
            "{HEADER}\nbytes {} checksum {:016x}\n{body}{FOOTER}\n",
            body.len(),
            fnv64(body.as_bytes()),
        )
    }

    /// Parse [`Self::render_text`] output. Strict: the byte count and
    /// checksum must match, every line must parse under its declared
    /// shape, names must be strictly ascending (the sorted-snapshot
    /// invariant), and nothing may follow the terminator.
    pub fn parse_text(text: &str) -> Result<MetricsSnapshot, ExpositionError> {
        let err = |msg: String| ExpositionError(msg);
        let rest = text
            .strip_prefix(HEADER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| err(format!("missing `{HEADER}` header")))?;
        let (meta, after_meta) = rest
            .split_once('\n')
            .ok_or_else(|| err("truncated before the bytes/checksum line".into()))?;
        let parts: Vec<&str> = meta.split_whitespace().collect();
        let [k_bytes, v_bytes, k_sum, v_sum] = parts.as_slice() else {
            return Err(err(format!("malformed meta line `{meta}`")));
        };
        if *k_bytes != "bytes" || *k_sum != "checksum" {
            return Err(err(format!("malformed meta line `{meta}`")));
        }
        let n_bytes: usize = v_bytes.parse().map_err(|e| err(format!("bytes `{v_bytes}`: {e}")))?;
        let declared =
            u64::from_str_radix(v_sum, 16).map_err(|e| err(format!("checksum `{v_sum}`: {e}")))?;
        if after_meta.len() < n_bytes {
            return Err(err(format!(
                "truncated body: {} bytes present, {n_bytes} declared",
                after_meta.len()
            )));
        }
        let body = &after_meta[..n_bytes];
        let computed = fnv64(body.as_bytes());
        if computed != declared {
            return Err(err(format!(
                "checksum mismatch: declared {declared:016x}, computed {computed:016x}"
            )));
        }
        let tail = &after_meta[n_bytes..];
        let after_footer = tail
            .strip_prefix(FOOTER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| err(format!("missing `{FOOTER}` terminator")))?;
        if !after_footer.trim().is_empty() {
            return Err(err(format!("trailing garbage after `{FOOTER}`: {after_footer:?}")));
        }

        let mut samples: Vec<Sample> = Vec::new();
        for (lineno, line) in body.lines().enumerate() {
            let bad = |what: &str| err(format!("body line {}: {what}: `{line}`", lineno + 1));
            let mut fields = line.split_whitespace();
            let kind = fields.next().ok_or_else(|| bad("empty line"))?;
            let name = fields.next().ok_or_else(|| bad("missing metric name"))?;
            if let Some(prev) = samples.last() {
                if prev.name.as_str() >= name {
                    return Err(bad("names must be strictly ascending"));
                }
            }
            let value = match kind {
                "counter" => {
                    let v = fields.next().ok_or_else(|| bad("missing counter value"))?;
                    let v: u64 = v.parse().map_err(|_| bad("counter value must be a u64"))?;
                    SampleValue::Counter(v)
                }
                "gauge" => {
                    let hex = fields.next().ok_or_else(|| bad("missing gauge bits"))?;
                    let v = f64_from_hex(hex).map_err(|e| bad(&format!("gauge bits: {e}")))?;
                    // The display rendering is informational; require it
                    // to be present so truncation mid-line is caught.
                    fields.next().ok_or_else(|| bad("missing gauge display value"))?;
                    SampleValue::Gauge(v)
                }
                "hist" => {
                    if fields.next() != Some("sum") {
                        return Err(bad("expected `sum`"));
                    }
                    let sum = fields.next().ok_or_else(|| bad("missing histogram sum"))?;
                    let sum: u64 = sum.parse().map_err(|_| bad("histogram sum must be a u64"))?;
                    if fields.next() != Some("buckets") {
                        return Err(bad("expected `buckets`"));
                    }
                    let mut h = HistogramSnapshot::empty();
                    h.sum = sum;
                    for pair in fields.by_ref() {
                        let (i, c) = pair
                            .split_once(':')
                            .ok_or_else(|| bad("bucket entries are `idx:count`"))?;
                        let i: usize =
                            i.parse().map_err(|_| bad("bucket index must be a usize"))?;
                        if i >= HISTOGRAM_BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        let c: u64 = c.parse().map_err(|_| bad("bucket count must be a u64"))?;
                        if h.buckets[i] != 0 {
                            return Err(bad("duplicate bucket index"));
                        }
                        h.buckets[i] = c;
                    }
                    SampleValue::Histogram(h)
                }
                other => return Err(bad(&format!("unknown metric kind `{other}`"))),
            };
            if fields.next().is_some() {
                return Err(bad("trailing fields"));
            }
            samples.push(Sample { name: name.to_string(), value });
        }
        Ok(MetricsSnapshot { samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = HistogramSnapshot::empty();
        h.buckets[0] = 2;
        h.buckets[7] = 5;
        h.buckets[64] = 1;
        h.sum = 12345;
        MetricsSnapshot {
            samples: vec![
                Sample { name: "a_counter".into(), value: SampleValue::Counter(42) },
                Sample { name: "b_gauge".into(), value: SampleValue::Gauge(-0.125) },
                Sample { name: "c_hist".into(), value: SampleValue::Histogram(h) },
            ],
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let snap = sample_snapshot();
        let text = snap.render_text();
        let back = MetricsSnapshot::parse_text(&text).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.render_text(), text);
    }

    #[test]
    fn nan_and_infinite_gauges_round_trip_by_bits() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let snap = MetricsSnapshot {
                samples: vec![Sample { name: "g".into(), value: SampleValue::Gauge(v) }],
            };
            let back = MetricsSnapshot::parse_text(&snap.render_text()).expect("parse");
            let Some(SampleValue::Gauge(got)) = back.get("g") else { panic!("gauge lost") };
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let text = sample_snapshot().render_text();
        for cut in 0..text.len() {
            assert!(
                MetricsSnapshot::parse_text(&text[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn corruption_and_garbage_are_rejected() {
        let snap = sample_snapshot();
        let text = snap.render_text();
        // Flip a digit in the body: checksum mismatch.
        let idx = text.find("counter a_counter 42").unwrap() + "counter a_counter ".len();
        let mut corrupt = text.clone();
        corrupt.replace_range(idx..idx + 1, "9");
        assert!(MetricsSnapshot::parse_text(&corrupt)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
        // Trailing garbage and version drift.
        let mut trailing = text.clone();
        trailing.push_str("extra\n");
        assert!(MetricsSnapshot::parse_text(&trailing).is_err());
        assert!(MetricsSnapshot::parse_text(&text.replace("v1", "v9")).is_err());
        assert!(MetricsSnapshot::parse_text("").is_err());
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let earlier = sample_snapshot();
        let mut later = earlier.clone();
        later.samples[0].value = SampleValue::Counter(50);
        later.samples[1].value = SampleValue::Gauge(9.0);
        let d = later.diff(&earlier);
        assert_eq!(d.counter("a_counter"), Some(8));
        assert_eq!(d.gauge("b_gauge"), Some(9.0));
        assert_eq!(d.histogram("c_hist").unwrap().count(), 0);
    }

    #[test]
    fn suffix_helpers_fold_across_shards() {
        let snap = MetricsSnapshot {
            samples: vec![
                Sample { name: "monitor_shard0_events".into(), value: SampleValue::Counter(3) },
                Sample { name: "monitor_shard1_events".into(), value: SampleValue::Counter(4) },
                Sample { name: "other_total".into(), value: SampleValue::Counter(100) },
            ],
        };
        assert_eq!(snap.sum_counters("_events"), 7);
    }
}
