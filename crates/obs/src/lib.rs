//! # prosel-obs
//!
//! The observability layer of the monitor stack: **wait-free metrics**,
//! **typed trace rings**, and a **strict text exposition codec** — so a
//! live [`prosel-monitor`](../prosel_monitor/index.html) service can
//! answer "what is ingest latency doing right now", "why was that
//! selector frame refused" and "how long did the last retrain take"
//! without perturbing the paths it measures.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] — a named collection of atomic [`Counter`]s,
//!   [`Gauge`]s and fixed log₂-bucketed [`Histogram`]s. Hot paths hold
//!   `Arc` handles and record through a few relaxed atomic adds — no
//!   locks, no allocation, consistent with the service's seqlock
//!   read-path discipline. The registry mutex is touched only at metric
//!   creation and at scrape time.
//! * [`TraceRing`] — a bounded ring of clock-stamped structured
//!   [`ObsEvent`]s (swap installed/refused, frame rejected with its
//!   typed [`FrameRejectReason`], retrain promoted/held, shard panic,
//!   checkpoint emitted). The [`prosel_engine::clock::Clock`] is
//!   injectable, so tests see deterministic stamps.
//! * [`MetricsSnapshot`] — the diffable scrape artifact, serialized by
//!   [`MetricsSnapshot::render_text`] in the workspace's strict
//!   checksummed text-artifact discipline (built on
//!   [`prosel_core::textio`]) and parsed back bit-exactly by
//!   [`MetricsSnapshot::parse_text`]; truncation, corruption and
//!   trailing garbage are rejected with a typed error.
//!
//! The monitor, learn and bench crates thread these through every layer
//! — runtime (steals, parks, queue depth), shard (per-event ingest
//! latency, snapshot eval time, delta decodes), service (read /
//! registration / swap latency, tap volume), learner (buffer occupancy,
//! retrain duration, promotion decisions) — and the traffic harness
//! scrapes the registry on a cadence into the bench trajectory. See the
//! README's "Observability" section for the metric name inventory.
//!
//! ```
//! use prosel_obs::{MetricsRegistry, MetricsSnapshot};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let events = registry.counter("events_total");   // cold: registers
//! let latency = registry.histogram("ingest_ns");
//! for v in [120u64, 340, 95] {
//!     events.inc();                                // hot: one atomic add
//!     latency.record(v);                           // hot: two atomic adds
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("events_total"), Some(3));
//! let text = snap.render_text();
//! assert_eq!(MetricsSnapshot::parse_text(&text).unwrap(), snap);
//! ```

pub mod metrics;
pub mod ring;
pub mod snapshot;

pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, MetricsRegistry,
    HISTOGRAM_BUCKETS,
};
pub use ring::{FrameRejectReason, ObsEvent, TraceRecord, TraceRing};
pub use snapshot::{ExpositionError, HistogramSnapshot, MetricsSnapshot, Sample, SampleValue};

/// Instrumentation knobs shared by the observed components.
///
/// Counters and gauges are always on (they replace what used to be
/// plain-field bookkeeping, at the same one-increment-per-event cost);
/// these knobs govern the *timing* instrumentation, whose clock reads
/// are the only part with measurable hot-path cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOptions {
    /// Record latency histograms (reads, per-event ingest, snapshot
    /// eval). Off, the timed paths skip every clock read — the
    /// uninstrumented A/B reference of the `metrics_overhead` bench.
    pub timing: bool,
    /// Sample 1-in-N events for the hot-path latency histograms
    /// (clamped to ≥ 1). Cold paths (registration, swap, retrain) are
    /// always timed when `timing` is on.
    ///
    /// The default of 4096 keeps sampled events at ~2% of the
    /// above-p99 population (1/4096 sampled vs 1/100 in the tail), so
    /// tail-latency readings of instrumented hot paths are not
    /// inflated by the sampler's own clock reads even when the natural
    /// latency distribution has its knee right at p99 — the property
    /// the `metrics_overhead` bench pins. A service answering ~100k
    /// reads/s still lands ~25 histogram samples per second.
    pub sample_every: u32,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions { timing: true, sample_every: 4096 }
    }
}

impl ObsOptions {
    /// The A/B reference configuration: no timing anywhere.
    pub fn untimed() -> ObsOptions {
        ObsOptions { timing: false, ..ObsOptions::default() }
    }

    /// `sample_every`, clamped to ≥ 1.
    pub fn stride(&self) -> u32 {
        self.sample_every.max(1)
    }
}
