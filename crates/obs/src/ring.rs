//! Bounded rings of typed, clock-stamped structured events.
//!
//! Metrics aggregate; they cannot answer "*why* was that selector frame
//! refused" or "what did the last retrain decide". [`TraceRing`] keeps
//! the most recent N control-plane events — swap installs and refusals,
//! frame rejections with their typed reason, retrain outcomes, shard
//! panics, checkpoint emissions — each stamped by an injectable
//! [`Clock`] so tests with a [`prosel_engine::clock::ManualClock`] see
//! deterministic stamps.
//!
//! Rings are for **rare** events (swaps, retrains, failures), not the
//! per-event data plane: emission takes a short mutex on the ring's
//! deque, which is fine at control-plane rates and keeps readers
//! trivially consistent. Give each producer its own ring when producers
//! are hot enough to contend.

use prosel_engine::clock::Clock;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a selector publication frame was refused by a subscriber.
///
/// Mirrors `prosel_learn::SubscribeError` shape-for-shape (the learn
/// crate depends on this crate, not the other way around, so the reason
/// is restated here as plain data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRejectReason {
    /// The underlying stream failed mid-frame.
    Io,
    /// The frame was truncated (torn write / partial read).
    Torn,
    /// The payload checksum did not match the declared one.
    ChecksumMismatch {
        /// Checksum declared in the frame header.
        declared: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The offered epoch does not advance past the installed one.
    StaleEpoch {
        /// Epoch currently installed at the subscriber.
        current: u64,
        /// Epoch the frame offered.
        offered: u64,
    },
    /// The frame's header, meta fields or payload failed to parse.
    Malformed,
}

impl fmt::Display for FrameRejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameRejectReason::Io => write!(f, "io error"),
            FrameRejectReason::Torn => write!(f, "torn frame"),
            FrameRejectReason::ChecksumMismatch { declared, computed } => {
                write!(f, "checksum mismatch (declared {declared:016x}, computed {computed:016x})")
            }
            FrameRejectReason::StaleEpoch { current, offered } => {
                write!(f, "stale epoch (offered {offered}, current {current})")
            }
            FrameRejectReason::Malformed => write!(f, "malformed frame"),
        }
    }
}

/// One structured control-plane event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// A selector swap was installed service-wide at this epoch.
    SwapInstalled {
        /// The epoch the swap landed at.
        epoch: u64,
    },
    /// A selector swap could not reach every shard.
    SwapRefused {
        /// Number of shards that refused the swap (dead workers).
        dead_shards: usize,
    },
    /// A publication frame was refused by a subscriber.
    FrameRejected {
        /// The typed refusal reason.
        reason: FrameRejectReason,
    },
    /// A retrain round promoted its candidate.
    RetrainPromoted {
        /// Buffered records the candidate was fit on.
        trained_on: usize,
        /// Candidate's validation L1 (NaN when the guard was starved).
        candidate_l1: f64,
        /// Incumbent's validation L1 on the same slice.
        incumbent_l1: f64,
    },
    /// A retrain round held the incumbent (guard rejection or skip).
    RetrainHeld {
        /// Buffered records the candidate was fit on (0 ⇒ skipped).
        trained_on: usize,
        /// Candidate's validation L1.
        candidate_l1: f64,
        /// Incumbent's validation L1.
        incumbent_l1: f64,
    },
    /// A shard worker panicked and was fenced off.
    ShardPanic {
        /// The dead shard's index.
        shard: usize,
    },
    /// The trainer serialized a learner checkpoint.
    CheckpointEmitted {
        /// Size of the checkpoint artifact, in bytes.
        bytes: usize,
    },
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsEvent::SwapInstalled { epoch } => write!(f, "swap installed (epoch {epoch})"),
            ObsEvent::SwapRefused { dead_shards } => {
                write!(f, "swap refused by {dead_shards} dead shard(s)")
            }
            ObsEvent::FrameRejected { reason } => write!(f, "frame rejected: {reason}"),
            ObsEvent::RetrainPromoted { trained_on, candidate_l1, incumbent_l1 } => write!(
                f,
                "retrain promoted ({trained_on} records, L1 {candidate_l1:.4} vs {incumbent_l1:.4})"
            ),
            ObsEvent::RetrainHeld { trained_on, candidate_l1, incumbent_l1 } => write!(
                f,
                "retrain held ({trained_on} records, L1 {candidate_l1:.4} vs {incumbent_l1:.4})"
            ),
            ObsEvent::ShardPanic { shard } => write!(f, "shard {shard} panicked"),
            ObsEvent::CheckpointEmitted { bytes } => write!(f, "checkpoint emitted ({bytes} B)"),
        }
    }
}

/// One ring entry: the event plus its clock stamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Reading of the ring's clock at emission.
    pub at: f64,
    /// The event.
    pub event: ObsEvent,
}

struct RingInner {
    clock: Arc<dyn Clock>,
    capacity: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

/// A bounded ring of clock-stamped [`ObsEvent`]s. Cheap to clone (all
/// clones share the same buffer); see the module docs for when to share
/// vs. give each producer its own.
#[derive(Clone)]
pub struct TraceRing {
    inner: Arc<RingInner>,
}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceRing(cap {}, len {})", self.inner.capacity, self.len())
    }
}

impl TraceRing {
    /// A ring retaining the most recent `capacity` events (clamped to
    /// ≥ 1), stamped by `clock`.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> TraceRing {
        TraceRing {
            inner: Arc::new(RingInner {
                clock,
                capacity: capacity.max(1),
                buf: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Append one event, stamped with the ring clock's current reading.
    /// Evicts the oldest entry when full (counted in [`Self::dropped`]).
    pub fn emit(&self, event: ObsEvent) {
        let at = self.inner.clock.now();
        let mut buf = self.inner.buf.lock().expect("trace ring poisoned");
        if buf.len() == self.inner.capacity {
            buf.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(TraceRecord { at, event });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        self.inner.buf.lock().expect("trace ring poisoned").iter().copied().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("trace ring poisoned").len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::clock::ManualClock;

    #[test]
    fn ring_stamps_bounds_and_counts_drops() {
        let clock = Arc::new(ManualClock::new(10.0));
        let ring = TraceRing::new(2, clock.clone());
        ring.emit(ObsEvent::SwapInstalled { epoch: 1 });
        clock.advance(5.0);
        ring.emit(ObsEvent::ShardPanic { shard: 0 });
        ring.emit(ObsEvent::SwapRefused { dead_shards: 1 });
        let recent = ring.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(recent[0].at, 15.0);
        assert_eq!(recent[0].event, ObsEvent::ShardPanic { shard: 0 });
        assert_eq!(recent[1].event, ObsEvent::SwapRefused { dead_shards: 1 });
    }

    #[test]
    fn clones_share_one_buffer() {
        let ring = TraceRing::new(8, Arc::new(ManualClock::new(0.0)));
        let clone = ring.clone();
        clone.emit(ObsEvent::CheckpointEmitted { bytes: 99 });
        assert_eq!(ring.len(), 1);
    }
}
