//! Property net for the observability primitives: histogram bucketing
//! (monotone bounds, count conservation, quantile brackets) and the
//! exposition text codec (bit-exact round trip, truncation and garbage
//! rejection) — the same discipline the workspace's other strict codecs
//! are held to.

use proptest::prelude::*;
use prosel_obs::{
    bucket_index, bucket_lower, bucket_upper, Histogram, MetricsSnapshot, Sample, SampleValue,
    HISTOGRAM_BUCKETS,
};

/// The harness's exact-quantile convention: sort, then take rank
/// `round((len - 1) · q)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

/// Deterministically expand compact generator parameters into a sample
/// set mixing magnitudes (so buckets across the whole range are hit).
fn synth_values(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            // xorshift64*, then keep a random number of low bits so the
            // magnitude distribution is log-uniform-ish.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let keep = (x >> 58) as u32; // 0..64
            if keep == 0 {
                0
            } else {
                x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> (64 - keep)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket bounds are monotone and tile the u64 range; every value
    /// falls inside its own bucket's bounds.
    #[test]
    fn bucket_geometry_is_sound(seed in 1u64..u64::MAX) {
        for i in 1..HISTOGRAM_BUCKETS {
            prop_assert_eq!(bucket_lower(i), bucket_upper(i - 1).wrapping_add(1));
            prop_assert!(bucket_lower(i) <= bucket_upper(i));
        }
        for v in synth_values(seed, 64) {
            let i = bucket_index(v);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "{} not in bucket {}", v, i);
        }
    }

    /// Recording N samples conserves the count and the sum, and the
    /// bracket returned for p50/p99 contains the exact sample quantile.
    #[test]
    fn histogram_conserves_and_brackets_quantiles(seed in 1u64..u64::MAX, n in 1usize..800) {
        let values = synth_values(seed, n);
        let h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.sum(), sum as u64); // u64 wrap only past 2^64 total
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(lo <= exact && exact <= hi,
                "q={}: exact {} outside bracket [{}, {}]", q, exact, lo, hi);
            prop_assert!(h.quantile(q) >= exact, "point estimate must be conservative");
        }
    }

    /// render → parse → render is the identity, and the parsed snapshot
    /// compares equal (counters, gauge bits, histogram buckets).
    #[test]
    fn exposition_round_trip_is_exact(
        seed in 1u64..u64::MAX,
        n_counters in 0usize..6,
        n_hists in 0usize..3,
        gauge_raw in any::<u64>(),
    ) {
        let values = synth_values(seed, 32);
        let mut samples = Vec::new();
        for (i, v) in values.iter().take(n_counters).enumerate() {
            samples.push(Sample { name: format!("c{i}_total"), value: SampleValue::Counter(*v) });
        }
        // Any bit pattern except NaNs (snapshot equality is f64 ==; the
        // NaN payload case is pinned bit-level by a unit test).
        let g = f64::from_bits(gauge_raw);
        let g = if g.is_nan() { 0.25 } else { g };
        samples.push(Sample { name: "g_gauge".into(), value: SampleValue::Gauge(g) });
        for i in 0..n_hists {
            let h = Histogram::new();
            for &v in values.iter().skip(i * 8).take(8) {
                h.record(v);
            }
            samples.push(Sample { name: format!("h{i}_ns"), value: SampleValue::Histogram(h.snapshot()) });
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        let snap = MetricsSnapshot { samples };

        let text = snap.render_text();
        let back = MetricsSnapshot::parse_text(&text).expect("own output must parse");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.render_text(), text);
    }

    /// Every strict byte-prefix of a valid exposition is rejected.
    #[test]
    fn exposition_truncations_are_rejected(seed in 1u64..u64::MAX, frac in 0.0f64..1.0) {
        let h = Histogram::new();
        for v in synth_values(seed, 24) {
            h.record(v);
        }
        let snap = MetricsSnapshot { samples: vec![
            Sample { name: "a_total".into(), value: SampleValue::Counter(seed) },
            Sample { name: "b_ns".into(), value: SampleValue::Histogram(h.snapshot()) },
        ]};
        let text = snap.render_text();
        let cut = ((text.len() - 1) as f64 * frac) as usize; // < text.len()
        prop_assert!(
            MetricsSnapshot::parse_text(&text[..cut]).is_err(),
            "prefix of {} of {} bytes must be rejected", cut, text.len()
        );
    }

    /// A corrupted byte or injected garbage line never parses.
    #[test]
    fn exposition_garbage_is_rejected(seed in 1u64..u64::MAX, frac in 0.0f64..1.0) {
        let snap = MetricsSnapshot { samples: vec![
            Sample { name: "a_total".into(), value: SampleValue::Counter(seed % 1000) },
            Sample { name: "z_gauge".into(), value: SampleValue::Gauge(1.5) },
        ]};
        let text = snap.render_text();
        // Inject a foreign line at an arbitrary position.
        let mut lines: Vec<&str> = text.lines().collect();
        let pos = (lines.len() as f64 * frac) as usize;
        lines.insert(pos.min(lines.len()), "counter zzz_sneaky 7");
        let polluted = lines.join("\n") + "\n";
        prop_assert!(MetricsSnapshot::parse_text(&polluted).is_err(),
            "garbage at line {} must not parse", pos);
        // Flip one body byte: the checksum catches it even when the line
        // still parses shape-wise.
        let body_start = text.find('\n').unwrap() + 1;
        let body_start = body_start + text[body_start..].find('\n').unwrap() + 1;
        if body_start < text.len() - "endmetrics\n".len() {
            let idx = body_start
                + ((text.len() - "endmetrics\n".len() - body_start - 1) as f64 * frac) as usize;
            let mut bytes = text.clone().into_bytes();
            bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
            if let Ok(corrupt) = String::from_utf8(bytes) {
                if corrupt != text {
                    prop_assert!(MetricsSnapshot::parse_text(&corrupt).is_err());
                }
            }
        }
    }
}
