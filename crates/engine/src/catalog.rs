//! Execution catalog: a database plus its physical design, with index
//! structures materialized for seeks, index scans and merge joins.

use prosel_datagen::{Database, PhysicalDesign, Table};
use std::collections::HashMap;

/// A secondary index: row ids ordered by key value.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// Keys in ascending order.
    keys: Vec<i64>,
    /// Row ids aligned with `keys`.
    rowids: Vec<u32>,
}

impl SortedIndex {
    /// Build from a column.
    pub fn build(col: &[i64]) -> Self {
        let mut pairs: Vec<(i64, u32)> =
            col.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        pairs.sort_unstable();
        SortedIndex {
            keys: pairs.iter().map(|&(k, _)| k).collect(),
            rowids: pairs.iter().map(|&(_, r)| r).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Position range of entries with `key == v`.
    pub fn equal_range(&self, v: i64) -> (usize, usize) {
        let lo = self.keys.partition_point(|&k| k < v);
        let hi = self.keys.partition_point(|&k| k <= v);
        (lo, hi)
    }

    /// Position range of entries with `lo <= key <= hi`.
    pub fn range(&self, lo: i64, hi: i64) -> (usize, usize) {
        let a = self.keys.partition_point(|&k| k < lo);
        let b = self.keys.partition_point(|&k| k <= hi);
        (a, b)
    }

    /// Row id at index-order position `pos`.
    #[inline]
    pub fn rowid_at(&self, pos: usize) -> u32 {
        self.rowids[pos]
    }

    /// Key at index-order position `pos`.
    #[inline]
    pub fn key_at(&self, pos: usize) -> i64 {
        self.keys[pos]
    }
}

/// Execution-ready view over a [`Database`] and [`PhysicalDesign`].
#[derive(Debug)]
pub struct Catalog<'a> {
    db: &'a Database,
    design: &'a PhysicalDesign,
    /// `(table, column_index)` → index.
    indexes: HashMap<(String, usize), SortedIndex>,
}

impl<'a> Catalog<'a> {
    /// Materialize all indexes declared by the design.
    pub fn new(db: &'a Database, design: &'a PhysicalDesign) -> Self {
        let mut indexes = HashMap::new();
        for def in &design.indexes {
            let table = db.table(&def.table);
            let col = table.col(&def.key_col);
            indexes
                .entry((def.table.clone(), col))
                .or_insert_with(|| SortedIndex::build(table.column(col)));
        }
        Catalog { db, design, indexes }
    }

    pub fn database(&self) -> &'a Database {
        self.db
    }

    pub fn design(&self) -> &'a PhysicalDesign {
        self.design
    }

    pub fn table(&self, name: &str) -> &'a Table {
        self.db.table(name)
    }

    /// The index on `(table, col)`, if the design declares one.
    pub fn index(&self, table: &str, col: usize) -> Option<&SortedIndex> {
        self.indexes.get(&(table.to_string(), col))
    }

    /// Panicking variant for plan execution (plans must only reference
    /// indexes that exist in the design).
    pub fn index_required(&self, table: &str, col: usize) -> &SortedIndex {
        self.index(table, col).unwrap_or_else(|| {
            panic!(
                "plan requires missing index on {table}.[{col}] (physical design {:?})",
                self.design.level
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_datagen::tpch::{generate, TpchConfig};
    use prosel_datagen::TuningLevel;

    #[test]
    fn sorted_index_ranges() {
        let idx = SortedIndex::build(&[5, 1, 3, 3, 9]);
        assert_eq!(idx.len(), 5);
        let (lo, hi) = idx.equal_range(3);
        assert_eq!(hi - lo, 2);
        let rows: Vec<u32> = (lo..hi).map(|p| idx.rowid_at(p)).collect();
        assert_eq!(rows, vec![2, 3]);
        let (a, b) = idx.range(3, 5);
        assert_eq!(b - a, 3);
        assert_eq!(idx.equal_range(100), (5, 5));
        assert_eq!(idx.range(-5, 0), (0, 0));
    }

    #[test]
    fn catalog_builds_design_indexes() {
        let db = generate(&TpchConfig { scale: 0.2, skew: 0.0, seed: 1 });
        let design = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
        let cat = Catalog::new(&db, &design);
        let li = db.table("lineitem");
        assert!(cat.index("lineitem", li.col("l_orderkey")).is_some());
        // Untuned lacks FK indexes.
        let untuned = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let cat2 = Catalog::new(&db, &untuned);
        assert!(cat2.index("lineitem", li.col("l_orderkey")).is_none());
        assert!(cat2.index("orders", db.table("orders").col("o_orderkey")).is_some());
    }
}
