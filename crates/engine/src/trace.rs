//! Observation traces: what a progress estimator is allowed to see.
//!
//! A running query is observed at (approximately) evenly spaced points of
//! virtual time. Each [`Snapshot`] records, per plan node, the counters
//! the paper's estimators consume: K_i (GetNext calls so far), bytes
//! logically read (R_i) and written (W_i). The trace also records the
//! final totals (the true N_i, unknowable mid-query) and per-pipeline
//! activity windows, which define "true progress" for error measurement.

use crate::pipeline::Pipeline;
use crate::plan::PhysicalPlan;

/// Counter state at one observation point.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Virtual time of this observation.
    pub time: f64,
    /// GetNext calls so far per node (K_i^t).
    pub k: Box<[u64]>,
    /// Bytes logically read so far per node.
    pub bytes_read: Box<[u64]>,
    /// Bytes logically written so far per node.
    pub bytes_written: Box<[u64]>,
    /// Materialized output sizes per node (rows), reported by blocking
    /// operators when their build phase completes — the paper's §3.4
    /// "exact input sizes known when the pipeline starts". Zero until the
    /// operator materializes.
    pub materialized: Box<[u64]>,
}

impl Snapshot {
    /// Borrow this snapshot as a [`SnapshotView`] (no copies).
    pub fn as_view(&self) -> SnapshotView<'_> {
        SnapshotView {
            time: self.time,
            k: &self.k,
            bytes_read: &self.bytes_read,
            bytes_written: &self.bytes_written,
            materialized: &self.materialized,
        }
    }
}

/// A borrowed view of one observation point — the same counters as
/// [`Snapshot`] without owning the slabs. Consumers that reconstruct
/// snapshots from [`TraceEvent::Delta`] events hand estimator code a view
/// over their per-query scratch buffers instead of allocating a fresh
/// `Box<[u64]>` quartet per event.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    /// Virtual time of this observation.
    pub time: f64,
    /// GetNext calls so far per node (K_i^t).
    pub k: &'a [u64],
    /// Bytes logically read so far per node.
    pub bytes_read: &'a [u64],
    /// Bytes logically written so far per node.
    pub bytes_written: &'a [u64],
    /// Materialized output sizes per node (rows); see
    /// [`Snapshot::materialized`].
    pub materialized: &'a [u64],
}

impl SnapshotView<'_> {
    /// Copy the view into an owned [`Snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            time: self.time,
            k: self.k.into(),
            bytes_read: self.bytes_read.into(),
            bytes_written: self.bytes_written.into(),
            materialized: self.materialized.into(),
        }
    }
}

/// The full observable history of one query execution.
#[derive(Debug, Clone)]
pub struct ObservationTrace {
    pub snapshots: Vec<Snapshot>,
    /// True totals N_i (available only after termination).
    pub final_k: Vec<u64>,
    pub final_bytes_read: Vec<u64>,
    pub final_bytes_written: Vec<u64>,
    /// Final materialized output sizes (rows) of blocking operators; zero
    /// for operators that never materialize.
    pub final_materialized: Vec<u64>,
    /// Total virtual execution time.
    pub total_time: f64,
    /// Per-pipeline `(first_tick_time, last_tick_time)` activity windows,
    /// indexed by pipeline id. Pipelines that never produced a tick have
    /// `(f64::INFINITY, f64::NEG_INFINITY)`.
    pub pipeline_windows: Vec<(f64, f64)>,
}

impl ObservationTrace {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// True query-level progress (elapsed-time fraction) at snapshot `j`.
    pub fn true_progress(&self, j: usize) -> f64 {
        if self.total_time <= 0.0 {
            return 1.0;
        }
        (self.snapshots[j].time / self.total_time).clamp(0.0, 1.0)
    }

    /// True *pipeline-level* progress at snapshot `j` for pipeline `pid`:
    /// elapsed fraction of the pipeline's own activity window, clamped to
    /// `[0,1]` outside the window.
    pub fn true_pipeline_progress(&self, pid: usize, j: usize) -> f64 {
        let (start, end) = self.pipeline_windows[pid];
        let t = self.snapshots[j].time;
        if !start.is_finite() || end <= start {
            return 1.0;
        }
        ((t - start) / (end - start)).clamp(0.0, 1.0)
    }

    /// Indices of snapshots that fall inside pipeline `pid`'s activity
    /// window (inclusive of the first snapshot at/after completion so the
    /// curve reaches 1.0).
    pub fn pipeline_observations(&self, pid: usize) -> Vec<usize> {
        let (start, end) = self.pipeline_windows[pid];
        if !start.is_finite() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut past_end = false;
        for (j, s) in self.snapshots.iter().enumerate() {
            if s.time < start {
                continue;
            }
            if s.time <= end {
                out.push(j);
            } else if !past_end {
                out.push(j);
                past_end = true;
            }
        }
        out
    }
}

/// One event of a live observation stream ([`TraceTap`]).
///
/// A tapped execution emits, in deterministic order, exactly the
/// information a post-hoc consumer would find in the final
/// [`ObservationTrace`] — but incrementally, as execution proceeds. The
/// `windows` of each event are the pipeline activity windows *as known at
/// that point*: `(f64::INFINITY, f64::NEG_INFINITY)` for pipelines that
/// have not started, and a growing `last` for active ones.
///
/// Snapshot and termination events additionally carry a `wall` stamp —
/// wall-clock seconds from the run's [`crate::clock::Clock`]
/// ([`crate::context::ExecConfig::wall_clock`]), taken at emission. Wall
/// stamps are what remaining-time (ETA) consumers divide progress deltas
/// by; they never affect execution and the virtual-time trace is identical
/// whatever clock is injected.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A snapshot was recorded (also emitted for the terminal snapshot
    /// taken when the query finishes). `seq` counts every snapshot this
    /// query has emitted (thinned ones included), so a consumer can tell
    /// whether it has seen the stream from the start — required to mirror
    /// the bounded buffer through `Thinned` events.
    Snapshot { query: usize, seq: u64, wall: f64, snapshot: Snapshot, windows: Box<[(f64, f64)]> },
    /// A snapshot was recorded, transmitted as a sparse diff against the
    /// previous emission instead of full counter vectors: `changes` lists
    /// the **absolute new values** of exactly the (node, counter) pairs
    /// that changed, and `window_updates` the pipelines whose activity
    /// window moved. `seq` follows the same numbering as
    /// [`TraceEvent::Snapshot`] — a delta stands for one snapshot. The
    /// first emission of a query is always a full `Snapshot` (the
    /// baseline); see [`DeltaEncoder`]/[`DeltaDecoder`] for the wire
    /// protocol. Because values are absolute, the encoding is insensitive
    /// to buffer thinning on either side.
    Delta {
        query: usize,
        seq: u64,
        wall: f64,
        /// Virtual time of the underlying observation (always changes, so
        /// it rides in the header rather than as a counter update).
        time: f64,
        changes: Box<[CounterUpdate]>,
        window_updates: Box<[(u32, (f64, f64))]>,
    },
    /// The bounded snapshot buffer was thinned: of the snapshots retained
    /// so far, only those at odd positions survive, and the sampling
    /// interval doubles. Consumers mirroring the trace must apply the same
    /// rule to stay aligned with the final [`ObservationTrace`].
    Thinned { query: usize },
    /// The query terminated; `windows` are the final activity windows.
    Finished { query: usize, wall: f64, windows: Box<[(f64, f64)]>, total_time: f64 },
}

/// Which per-node counter a [`CounterUpdate`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CounterKind {
    /// GetNext calls (K_i).
    GetNext,
    /// Bytes logically read (R_i).
    BytesRead,
    /// Bytes logically written (W_i).
    BytesWritten,
    /// Materialized output size (rows).
    Materialized,
}

/// One sparse counter update inside a [`TraceEvent::Delta`]: the counter
/// `counter` of plan node `node` now holds `value` (absolute, not a
/// difference — replaying updates is idempotent and thinning-safe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterUpdate {
    /// Plan node index.
    pub node: u32,
    /// Which counter changed.
    pub counter: CounterKind,
    /// The absolute new counter value.
    pub value: u64,
}

impl TraceEvent {
    /// The query this event belongs to.
    pub fn query(&self) -> usize {
        match self {
            TraceEvent::Snapshot { query, .. }
            | TraceEvent::Delta { query, .. }
            | TraceEvent::Thinned { query }
            | TraceEvent::Finished { query, .. } => *query,
        }
    }

    /// The wall-clock stamp of this event, if it carries one (`Thinned`
    /// events mark a buffer transformation, not an observation, and are
    /// unstamped).
    pub fn wall(&self) -> Option<f64> {
        match self {
            TraceEvent::Snapshot { wall, .. }
            | TraceEvent::Delta { wall, .. }
            | TraceEvent::Finished { wall, .. } => Some(*wall),
            TraceEvent::Thinned { .. } => None,
        }
    }

    /// Approximate serialized size of this event's payload in bytes — the
    /// accounting the benches and the traffic soak use to compare full
    /// snapshots against delta compression. Header fields (query, seq,
    /// wall, time) count 8 bytes each; each counter slot 8 bytes; each
    /// sparse [`CounterUpdate`] 13 bytes (4 node + 1 kind + 8 value); each
    /// window pair 16 bytes (plus a 4-byte pipeline index when sparse).
    pub fn payload_bytes(&self) -> usize {
        match self {
            TraceEvent::Snapshot { snapshot, windows, .. } => {
                32 + 8 * 4 * snapshot.k.len() + 16 * windows.len()
            }
            TraceEvent::Delta { changes, window_updates, .. } => {
                32 + 13 * changes.len() + 20 * window_updates.len()
            }
            TraceEvent::Thinned { .. } => 8,
            TraceEvent::Finished { windows, .. } => 32 + 16 * windows.len(),
        }
    }
}

/// Producer half of the snapshot-delta wire protocol.
///
/// Retains the last-emitted counters and windows for one query. The first
/// call to [`DeltaEncoder::encode`] returns `None` — the caller must emit
/// a full [`TraceEvent::Snapshot`] as the baseline — and every later call
/// returns the sparse diff against the previous emission. Counter values
/// are transmitted **absolute**, so a decoder that missed nothing
/// reconstructs the exact snapshot stream bit-for-bit, and engine-side
/// buffer thinning (which never rewinds counters) cannot desynchronize
/// the pair.
#[derive(Debug, Default)]
pub struct DeltaEncoder {
    primed: bool,
    k: Vec<u64>,
    bytes_read: Vec<u64>,
    bytes_written: Vec<u64>,
    materialized: Vec<u64>,
    windows: Vec<(f64, f64)>,
}

impl DeltaEncoder {
    /// A fresh, unprimed encoder.
    pub fn new() -> DeltaEncoder {
        DeltaEncoder::default()
    }

    /// Diff `snap`/`windows` against the previous emission and advance the
    /// baseline. Returns `None` on the first call (emit a full snapshot);
    /// `Some((changes, window_updates))` afterwards.
    #[allow(clippy::type_complexity)]
    pub fn encode(
        &mut self,
        snap: &Snapshot,
        windows: &[(f64, f64)],
    ) -> Option<(Box<[CounterUpdate]>, Box<[(u32, (f64, f64))]>)> {
        if !self.primed {
            self.k = snap.k.to_vec();
            self.bytes_read = snap.bytes_read.to_vec();
            self.bytes_written = snap.bytes_written.to_vec();
            self.materialized = snap.materialized.to_vec();
            self.windows = windows.to_vec();
            self.primed = true;
            return None;
        }
        let mut changes = Vec::new();
        let cols: [(&[u64], &mut Vec<u64>, CounterKind); 4] = [
            (&snap.k, &mut self.k, CounterKind::GetNext),
            (&snap.bytes_read, &mut self.bytes_read, CounterKind::BytesRead),
            (&snap.bytes_written, &mut self.bytes_written, CounterKind::BytesWritten),
            (&snap.materialized, &mut self.materialized, CounterKind::Materialized),
        ];
        for (now, last, kind) in cols {
            for (node, (&v, slot)) in now.iter().zip(last.iter_mut()).enumerate() {
                if v != *slot {
                    changes.push(CounterUpdate { node: node as u32, counter: kind, value: v });
                    *slot = v;
                }
            }
        }
        let mut window_updates = Vec::new();
        for (pid, (&w, slot)) in windows.iter().zip(self.windows.iter_mut()).enumerate() {
            if w != *slot {
                window_updates.push((pid as u32, w));
                *slot = w;
            }
        }
        Some((changes.into_boxed_slice(), window_updates.into_boxed_slice()))
    }
}

/// Consumer half of the snapshot-delta wire protocol: per-query scratch
/// state holding the current counter vectors and activity windows. Full
/// snapshots overwrite the scratch in place (`copy_from_slice`, no
/// allocation after the first event); deltas patch it sparsely. The
/// scratch doubles as the monitor shard's reusable counter buffers — the
/// estimator path reads it through [`DeltaDecoder::view`] without copying.
#[derive(Debug, Default, Clone)]
pub struct DeltaDecoder {
    primed: bool,
    time: f64,
    k: Vec<u64>,
    bytes_read: Vec<u64>,
    bytes_written: Vec<u64>,
    materialized: Vec<u64>,
    windows: Vec<(f64, f64)>,
}

impl DeltaDecoder {
    /// A fresh, unprimed decoder.
    pub fn new() -> DeltaDecoder {
        DeltaDecoder::default()
    }

    /// Whether a baseline full snapshot has been applied yet. Deltas
    /// arriving before that are a protocol violation.
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// Apply a full snapshot, replacing the scratch contents in place.
    pub fn apply_full(&mut self, snap: &Snapshot, windows: &[(f64, f64)]) {
        self.time = snap.time;
        copy_into(&mut self.k, &snap.k);
        copy_into(&mut self.bytes_read, &snap.bytes_read);
        copy_into(&mut self.bytes_written, &snap.bytes_written);
        copy_into(&mut self.materialized, &snap.materialized);
        self.windows.clear();
        self.windows.extend_from_slice(windows);
        self.primed = true;
    }

    /// Patch the scratch with one delta. Returns `false` (leaving the
    /// scratch untouched) when the decoder is unprimed or an update
    /// addresses a node/pipeline outside the known arity — the caller
    /// should treat the stream as corrupt.
    pub fn apply_delta(
        &mut self,
        time: f64,
        changes: &[CounterUpdate],
        window_updates: &[(u32, (f64, f64))],
    ) -> bool {
        if !self.primed
            || changes.iter().any(|u| u.node as usize >= self.k.len())
            || window_updates.iter().any(|&(pid, _)| pid as usize >= self.windows.len())
        {
            return false;
        }
        self.time = time;
        for u in changes {
            let col = match u.counter {
                CounterKind::GetNext => &mut self.k,
                CounterKind::BytesRead => &mut self.bytes_read,
                CounterKind::BytesWritten => &mut self.bytes_written,
                CounterKind::Materialized => &mut self.materialized,
            };
            col[u.node as usize] = u.value;
        }
        for &(pid, w) in window_updates {
            self.windows[pid as usize] = w;
        }
        true
    }

    /// Borrow the current reconstructed counters as a [`SnapshotView`].
    pub fn view(&self) -> SnapshotView<'_> {
        SnapshotView {
            time: self.time,
            k: &self.k,
            bytes_read: &self.bytes_read,
            bytes_written: &self.bytes_written,
            materialized: &self.materialized,
        }
    }

    /// The current reconstructed activity windows.
    pub fn windows(&self) -> &[(f64, f64)] {
        &self.windows
    }
}

fn copy_into(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() == src.len() {
        dst.copy_from_slice(src);
    } else {
        dst.clear();
        dst.extend_from_slice(src);
    }
}

/// A consumer of live [`TraceEvent`]s that is not a plain channel — e.g. a
/// sharded monitor service that routes each event to the worker owning its
/// query. Implementations must be cheap and non-blocking on the send path:
/// the engine calls [`TapSink::send`] inline while executing the query.
pub trait TapSink: Send + Sync {
    /// Deliver one event. `Err` signals the consumer is gone; the engine
    /// then detaches the tap and stops paying for event construction.
    fn send(&self, ev: TraceEvent) -> Result<(), TraceEvent>;

    /// Deliver many events at once. The default forwards one by one;
    /// sinks with per-delivery overhead (queue locks, wakeups) override it
    /// to amortize — e.g. a sharded monitor takes one lock per *shard* per
    /// batch instead of one per event. `Err` returns every event that
    /// could not be delivered (order preserved among the returned ones);
    /// unlike [`TapSink::send`], a partial failure is not "consumer gone"
    /// — the caller decides whether to retry, drop, or detach.
    fn send_batch(&self, events: Vec<TraceEvent>) -> Result<(), Vec<TraceEvent>> {
        let mut returned = Vec::new();
        for ev in events {
            if let Err(ev) = self.send(ev) {
                returned.push(ev);
            }
        }
        if returned.is_empty() {
            Ok(())
        } else {
            Err(returned)
        }
    }
}

/// Sending half of a live observation stream. Cloneable; pass one to
/// [`crate::exec::run_plan_tapped`] or [`crate::exec::run_concurrent_tapped`]
/// and drain the paired `Receiver` from a monitor.
///
/// Two flavors:
/// * a plain mpsc channel — `std::sync::mpsc::channel()`'s sender converts
///   via `From`, so `run_plan_tapped(..., tap)` keeps working unchanged;
/// * a routed sink ([`TraceTap::from_sink`]) — one tapped run fans out to
///   the consumer that owns each event (e.g. a monitor shard selected by
///   query id) **without** cloning every event to every consumer.
#[derive(Clone)]
pub struct TraceTap {
    inner: TapInner,
}

#[derive(Clone)]
enum TapInner {
    Channel(std::sync::mpsc::Sender<TraceEvent>),
    Sink(std::sync::Arc<dyn TapSink>),
}

impl TraceTap {
    /// Wrap a routing sink (see [`TapSink`]).
    pub fn from_sink(sink: std::sync::Arc<dyn TapSink>) -> TraceTap {
        TraceTap { inner: TapInner::Sink(sink) }
    }

    /// Deliver one event; `Err` returns the event when the consumer is
    /// gone (receiver dropped / sink closed).
    pub fn send(&self, ev: TraceEvent) -> Result<(), TraceEvent> {
        match &self.inner {
            TapInner::Channel(tx) => tx.send(ev).map_err(|e| e.0),
            TapInner::Sink(sink) => sink.send(ev),
        }
    }

    /// Deliver many events at once (see [`TapSink::send_batch`]); `Err`
    /// returns the undeliverable events. Channels deliver one by one
    /// (mpsc has no batched send); routed sinks may amortize.
    pub fn send_batch(&self, events: Vec<TraceEvent>) -> Result<(), Vec<TraceEvent>> {
        match &self.inner {
            TapInner::Channel(tx) => {
                let mut returned = Vec::new();
                for ev in events {
                    if let Err(e) = tx.send(ev) {
                        returned.push(e.0);
                    }
                }
                if returned.is_empty() {
                    Ok(())
                } else {
                    Err(returned)
                }
            }
            TapInner::Sink(sink) => sink.send_batch(events),
        }
    }
}

impl From<std::sync::mpsc::Sender<TraceEvent>> for TraceTap {
    fn from(tx: std::sync::mpsc::Sender<TraceEvent>) -> TraceTap {
        TraceTap { inner: TapInner::Channel(tx) }
    }
}

impl std::fmt::Debug for TraceTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            TapInner::Channel(_) => f.write_str("TraceTap::Channel"),
            TapInner::Sink(_) => f.write_str("TraceTap::Sink"),
        }
    }
}

/// The bounded-buffer thinning rule, shared by the engine's snapshot
/// buffer ([`crate::context::ExecContext`]) and every consumer mirroring
/// it through [`TraceEvent::Thinned`] events: of the entries retained so
/// far, only those at **odd positions** survive (the sampling interval
/// doubling is the producer's business). Centralized here so the engine
/// and its mirrors cannot drift.
pub fn thin_half<T>(buf: &mut Vec<T>) {
    let mut i = 0usize;
    buf.retain(|_| {
        let keep = i % 2 == 1;
        i += 1;
        keep
    });
}

/// A completed query execution: plan, pipelines, trace.
#[derive(Debug, Clone)]
pub struct QueryRun {
    pub plan: PhysicalPlan,
    pub pipelines: Vec<Pipeline>,
    pub trace: ObservationTrace,
    /// Number of result rows produced at the root.
    pub result_rows: u64,
}

impl QueryRun {
    /// Total true GetNext calls across all nodes (Σ N_i).
    pub fn total_getnext(&self) -> u64 {
        self.trace.final_k.iter().sum()
    }

    /// Weight of pipeline `pid` for query-level progress (eq. (5)):
    /// ΣE_i within the pipeline over ΣE_i in the whole plan.
    pub fn pipeline_weight(&self, pid: usize) -> f64 {
        crate::pipeline::pipeline_weight(&self.plan, &self.pipelines[pid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> ObservationTrace {
        ObservationTrace {
            snapshots: (0..=10)
                .map(|i| Snapshot {
                    time: i as f64 * 10.0,
                    k: vec![i as u64].into_boxed_slice(),
                    bytes_read: vec![0].into_boxed_slice(),
                    bytes_written: vec![0].into_boxed_slice(),
                    materialized: vec![0].into_boxed_slice(),
                })
                .collect(),
            final_k: vec![10],
            final_bytes_read: vec![0],
            final_bytes_written: vec![0],
            final_materialized: vec![0],
            total_time: 100.0,
            pipeline_windows: vec![(0.0, 40.0), (40.0, 100.0), (f64::INFINITY, f64::NEG_INFINITY)],
        }
    }

    #[test]
    fn true_progress_is_time_fraction() {
        let t = toy_trace();
        assert_eq!(t.true_progress(0), 0.0);
        assert_eq!(t.true_progress(5), 0.5);
        assert_eq!(t.true_progress(10), 1.0);
    }

    #[test]
    fn pipeline_progress_clamps_to_window() {
        let t = toy_trace();
        // Pipeline 0 active over [0, 40].
        assert_eq!(t.true_pipeline_progress(0, 0), 0.0);
        assert_eq!(t.true_pipeline_progress(0, 2), 0.5);
        assert_eq!(t.true_pipeline_progress(0, 4), 1.0);
        assert_eq!(t.true_pipeline_progress(0, 9), 1.0);
        // Pipeline 1 active over [40, 100].
        assert_eq!(t.true_pipeline_progress(1, 4), 0.0);
        assert_eq!(t.true_pipeline_progress(1, 7), 0.5);
        assert_eq!(t.true_pipeline_progress(1, 10), 1.0);
        // Never-active pipeline reports complete.
        assert_eq!(t.true_pipeline_progress(2, 3), 1.0);
    }

    #[test]
    fn pipeline_observations_cover_window() {
        let t = toy_trace();
        let obs = t.pipeline_observations(0);
        // Snapshots at t=0..40 plus one past the end (t=50).
        assert_eq!(obs, vec![0, 1, 2, 3, 4, 5]);
        assert!(t.pipeline_observations(2).is_empty());
    }

    #[test]
    fn thin_half_keeps_odd_positions() {
        let mut v: Vec<u64> = (0..9).collect();
        thin_half(&mut v);
        assert_eq!(v, vec![1, 3, 5, 7]);
        thin_half(&mut v);
        assert_eq!(v, vec![3, 7]);
        let mut empty: Vec<u64> = Vec::new();
        thin_half(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn channel_tap_roundtrips_and_detects_hangup() {
        let (tx, rx) = std::sync::mpsc::channel();
        let tap: TraceTap = tx.into();
        assert!(tap.send(TraceEvent::Thinned { query: 3 }).is_ok());
        assert_eq!(rx.recv().unwrap().query(), 3);
        drop(rx);
        let back = tap.send(TraceEvent::Thinned { query: 4 }).unwrap_err();
        assert_eq!(back.query(), 4);
    }

    #[test]
    fn sink_tap_routes_through_the_trait() {
        struct Count(std::sync::Mutex<Vec<usize>>);
        impl TapSink for Count {
            fn send(&self, ev: TraceEvent) -> Result<(), TraceEvent> {
                self.0.lock().unwrap().push(ev.query());
                Ok(())
            }
        }
        let sink = std::sync::Arc::new(Count(std::sync::Mutex::new(Vec::new())));
        let tap = TraceTap::from_sink(sink.clone());
        for q in [5usize, 9, 5] {
            tap.clone().send(TraceEvent::Thinned { query: q }).unwrap();
        }
        assert_eq!(*sink.0.lock().unwrap(), vec![5, 9, 5]);
    }
}
