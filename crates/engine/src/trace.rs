//! Observation traces: what a progress estimator is allowed to see.
//!
//! A running query is observed at (approximately) evenly spaced points of
//! virtual time. Each [`Snapshot`] records, per plan node, the counters
//! the paper's estimators consume: K_i (GetNext calls so far), bytes
//! logically read (R_i) and written (W_i). The trace also records the
//! final totals (the true N_i, unknowable mid-query) and per-pipeline
//! activity windows, which define "true progress" for error measurement.

use crate::pipeline::Pipeline;
use crate::plan::PhysicalPlan;

/// Counter state at one observation point.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Virtual time of this observation.
    pub time: f64,
    /// GetNext calls so far per node (K_i^t).
    pub k: Box<[u64]>,
    /// Bytes logically read so far per node.
    pub bytes_read: Box<[u64]>,
    /// Bytes logically written so far per node.
    pub bytes_written: Box<[u64]>,
    /// Materialized output sizes per node (rows), reported by blocking
    /// operators when their build phase completes — the paper's §3.4
    /// "exact input sizes known when the pipeline starts". Zero until the
    /// operator materializes.
    pub materialized: Box<[u64]>,
}

/// The full observable history of one query execution.
#[derive(Debug, Clone)]
pub struct ObservationTrace {
    pub snapshots: Vec<Snapshot>,
    /// True totals N_i (available only after termination).
    pub final_k: Vec<u64>,
    pub final_bytes_read: Vec<u64>,
    pub final_bytes_written: Vec<u64>,
    /// Final materialized output sizes (rows) of blocking operators; zero
    /// for operators that never materialize.
    pub final_materialized: Vec<u64>,
    /// Total virtual execution time.
    pub total_time: f64,
    /// Per-pipeline `(first_tick_time, last_tick_time)` activity windows,
    /// indexed by pipeline id. Pipelines that never produced a tick have
    /// `(f64::INFINITY, f64::NEG_INFINITY)`.
    pub pipeline_windows: Vec<(f64, f64)>,
}

impl ObservationTrace {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// True query-level progress (elapsed-time fraction) at snapshot `j`.
    pub fn true_progress(&self, j: usize) -> f64 {
        if self.total_time <= 0.0 {
            return 1.0;
        }
        (self.snapshots[j].time / self.total_time).clamp(0.0, 1.0)
    }

    /// True *pipeline-level* progress at snapshot `j` for pipeline `pid`:
    /// elapsed fraction of the pipeline's own activity window, clamped to
    /// `[0,1]` outside the window.
    pub fn true_pipeline_progress(&self, pid: usize, j: usize) -> f64 {
        let (start, end) = self.pipeline_windows[pid];
        let t = self.snapshots[j].time;
        if !start.is_finite() || end <= start {
            return 1.0;
        }
        ((t - start) / (end - start)).clamp(0.0, 1.0)
    }

    /// Indices of snapshots that fall inside pipeline `pid`'s activity
    /// window (inclusive of the first snapshot at/after completion so the
    /// curve reaches 1.0).
    pub fn pipeline_observations(&self, pid: usize) -> Vec<usize> {
        let (start, end) = self.pipeline_windows[pid];
        if !start.is_finite() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut past_end = false;
        for (j, s) in self.snapshots.iter().enumerate() {
            if s.time < start {
                continue;
            }
            if s.time <= end {
                out.push(j);
            } else if !past_end {
                out.push(j);
                past_end = true;
            }
        }
        out
    }
}

/// One event of a live observation stream ([`TraceTap`]).
///
/// A tapped execution emits, in deterministic order, exactly the
/// information a post-hoc consumer would find in the final
/// [`ObservationTrace`] — but incrementally, as execution proceeds. The
/// `windows` of each event are the pipeline activity windows *as known at
/// that point*: `(f64::INFINITY, f64::NEG_INFINITY)` for pipelines that
/// have not started, and a growing `last` for active ones.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A snapshot was recorded (also emitted for the terminal snapshot
    /// taken when the query finishes). `seq` counts every snapshot this
    /// query has emitted (thinned ones included), so a consumer can tell
    /// whether it has seen the stream from the start — required to mirror
    /// the bounded buffer through `Thinned` events.
    Snapshot { query: usize, seq: u64, snapshot: Snapshot, windows: Box<[(f64, f64)]> },
    /// The bounded snapshot buffer was thinned: of the snapshots retained
    /// so far, only those at odd positions survive, and the sampling
    /// interval doubles. Consumers mirroring the trace must apply the same
    /// rule to stay aligned with the final [`ObservationTrace`].
    Thinned { query: usize },
    /// The query terminated; `windows` are the final activity windows.
    Finished { query: usize, windows: Box<[(f64, f64)]>, total_time: f64 },
}

impl TraceEvent {
    /// The query this event belongs to.
    pub fn query(&self) -> usize {
        match self {
            TraceEvent::Snapshot { query, .. }
            | TraceEvent::Thinned { query }
            | TraceEvent::Finished { query, .. } => *query,
        }
    }
}

/// Sending half of a live observation stream. Cloneable; pass one to
/// [`crate::exec::run_plan_tapped`] or [`crate::exec::run_concurrent_tapped`]
/// and drain the paired `Receiver` from a monitor.
pub type TraceTap = std::sync::mpsc::Sender<TraceEvent>;

/// A completed query execution: plan, pipelines, trace.
#[derive(Debug, Clone)]
pub struct QueryRun {
    pub plan: PhysicalPlan,
    pub pipelines: Vec<Pipeline>,
    pub trace: ObservationTrace,
    /// Number of result rows produced at the root.
    pub result_rows: u64,
}

impl QueryRun {
    /// Total true GetNext calls across all nodes (Σ N_i).
    pub fn total_getnext(&self) -> u64 {
        self.trace.final_k.iter().sum()
    }

    /// Weight of pipeline `pid` for query-level progress (eq. (5)):
    /// ΣE_i within the pipeline over ΣE_i in the whole plan.
    pub fn pipeline_weight(&self, pid: usize) -> f64 {
        crate::pipeline::pipeline_weight(&self.plan, &self.pipelines[pid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> ObservationTrace {
        ObservationTrace {
            snapshots: (0..=10)
                .map(|i| Snapshot {
                    time: i as f64 * 10.0,
                    k: vec![i as u64].into_boxed_slice(),
                    bytes_read: vec![0].into_boxed_slice(),
                    bytes_written: vec![0].into_boxed_slice(),
                    materialized: vec![0].into_boxed_slice(),
                })
                .collect(),
            final_k: vec![10],
            final_bytes_read: vec![0],
            final_bytes_written: vec![0],
            final_materialized: vec![0],
            total_time: 100.0,
            pipeline_windows: vec![(0.0, 40.0), (40.0, 100.0), (f64::INFINITY, f64::NEG_INFINITY)],
        }
    }

    #[test]
    fn true_progress_is_time_fraction() {
        let t = toy_trace();
        assert_eq!(t.true_progress(0), 0.0);
        assert_eq!(t.true_progress(5), 0.5);
        assert_eq!(t.true_progress(10), 1.0);
    }

    #[test]
    fn pipeline_progress_clamps_to_window() {
        let t = toy_trace();
        // Pipeline 0 active over [0, 40].
        assert_eq!(t.true_pipeline_progress(0, 0), 0.0);
        assert_eq!(t.true_pipeline_progress(0, 2), 0.5);
        assert_eq!(t.true_pipeline_progress(0, 4), 1.0);
        assert_eq!(t.true_pipeline_progress(0, 9), 1.0);
        // Pipeline 1 active over [40, 100].
        assert_eq!(t.true_pipeline_progress(1, 4), 0.0);
        assert_eq!(t.true_pipeline_progress(1, 7), 0.5);
        assert_eq!(t.true_pipeline_progress(1, 10), 1.0);
        // Never-active pipeline reports complete.
        assert_eq!(t.true_pipeline_progress(2, 3), 1.0);
    }

    #[test]
    fn pipeline_observations_cover_window() {
        let t = toy_trace();
        let obs = t.pipeline_observations(0);
        // Snapshots at t=0..40 plus one past the end (t=50).
        assert_eq!(obs, vec![0, 1, 2, 3, 4, 5]);
        assert!(t.pipeline_observations(2).is_empty());
    }
}
