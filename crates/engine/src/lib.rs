//! # prosel-engine
//!
//! A Volcano-model (iterator) query-execution **simulator** that stands in
//! for the instrumented SQL Server 2008 engine of the paper. Plans are
//! *actually executed* over in-memory tables — hash tables get built,
//! index seeks hit real sorted indexes, nested loops re-open their inner
//! side per outer row — while every GetNext call and logical I/O is
//! charged against a deterministic virtual clock.
//!
//! What progress estimation consumes from this crate:
//!
//! * [`plan::PhysicalPlan`] — operator trees with optimizer estimates E_i;
//! * [`pipeline`] — pipelines/segments and driver nodes per the paper §3.2;
//! * [`trace::ObservationTrace`] — per-node counters K_i, bytes read and
//!   written, sampled at (approximately) even virtual-time intervals, plus
//!   the post-hoc truth (N_i, total time, pipeline activity windows);
//! * [`exec::run_plan`] — executes a plan and returns a
//!   [`trace::QueryRun`].
//!
//! The cost model ([`cost::CostModel`]) is tuned so the idealized GetNext
//! model of progress correlates strongly but imperfectly with virtual
//! time, reproducing the paper's Section 6.7 observation.

pub mod catalog;
pub mod clock;
pub mod context;
pub mod cost;
pub mod exec;
pub mod pipeline;
pub mod plan;
pub mod trace;
pub mod tuple;

pub use catalog::{Catalog, SortedIndex};
pub use clock::{Clock, ManualClock, SystemClock};
pub use context::{ExecConfig, ExecContext};
pub use cost::{CostModel, SplitMix64};
pub use exec::{
    build_executor, run_concurrent, run_concurrent_tapped, run_plan, run_plan_seeded,
    run_plan_tapped, ConcurrentConfig, Executor, TurnScheduler,
};
pub use pipeline::{decompose, pipeline_of, pipeline_weight, Pipeline};
pub use plan::{
    AggFunc, CmpOp, NodeId, OperatorKind, PhysicalPlan, PlanNode, Predicate, SeekKind,
    OP_TYPE_COUNT, OP_TYPE_NAMES,
};
pub use trace::{thin_half, ObservationTrace, QueryRun, Snapshot, TapSink, TraceEvent, TraceTap};
pub use tuple::{Tuple, MAX_COLS};
