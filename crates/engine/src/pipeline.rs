//! Pipeline (segment) decomposition and driver-node identification.
//!
//! Following \[6\] (Chaudhuri et al., SIGMOD'04) and \[13\] (Luo et al.,
//! SIGMOD'04), a *pipeline* is a maximal subtree of plan nodes that execute
//! concurrently: blocking operator inputs cut the tree. In this engine the
//! blocking ("pipeline breaker") edges are:
//!
//! * `Sort` → its child (full sort materializes its input),
//! * `HashAggregate` → its child (hash build consumes everything first),
//! * `HashJoin` → its *build* child only (the probe side streams).
//!
//! `BatchSort` is deliberately **not** a breaker: it is only partially
//! blocking, which is exactly why it breaks driver-node estimators
//! (paper §5.1).
//!
//! The *driver nodes* (dominant inputs) of a pipeline are its source
//! leaves — nodes with no child inside the pipeline — **excluding** any
//! node on the inner side of a nested-loop join (the shaded-node semantics
//! of the paper's Figure 2). Blocking operators cut off from their inputs
//! (a `Sort` seen from the pipeline above it) act as sources and therefore
//! *are* driver nodes: by the time the pipeline starts, their output size
//! is exactly known.

use crate::plan::{NodeId, OperatorKind, PhysicalPlan};

/// One pipeline of a plan.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Dense pipeline id, in ascending order of execution start (post-order
    /// of the breaker tree, which matches Volcano open() order).
    pub id: usize,
    /// Plan nodes belonging to this pipeline, ascending.
    pub nodes: Vec<NodeId>,
    /// Driver nodes (dominant inputs).
    pub driver_nodes: Vec<NodeId>,
    /// Nodes on the inner side of a nested-loop join within this pipeline.
    pub nl_inner_nodes: Vec<NodeId>,
    /// BatchSort nodes (driver-set extension used by BATCHDNE).
    pub batch_sort_nodes: Vec<NodeId>,
    /// IndexSeek nodes (driver-set extension used by DNESEEK).
    pub index_seek_nodes: Vec<NodeId>,
}

impl Pipeline {
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }
}

/// Is the edge `parent -> parent.children[child_idx]` a pipeline breaker?
pub fn is_breaker_edge(plan: &PhysicalPlan, parent: NodeId, child_idx: usize) -> bool {
    match plan.node(parent).op {
        OperatorKind::Sort { .. } | OperatorKind::HashAggregate { .. } => true,
        // children[1] is the build side by convention.
        OperatorKind::HashJoin { .. } => child_idx == 1,
        _ => false,
    }
}

/// Decompose a plan into pipelines, ordered by execution start.
pub fn decompose(plan: &PhysicalPlan) -> Vec<Pipeline> {
    let n = plan.len();
    // Union nodes connected by non-breaker edges.
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while comp[root] != root {
            root = comp[root];
        }
        let mut cur = x;
        while comp[cur] != root {
            let next = comp[cur];
            comp[cur] = root;
            cur = next;
        }
        root
    }
    for id in 0..n {
        for (ci, &c) in plan.node(id).children.iter().enumerate() {
            if !is_breaker_edge(plan, id, ci) {
                let (a, b) = (find(&mut comp, id), find(&mut comp, c));
                if a != b {
                    comp[a] = b;
                }
            }
        }
    }

    // Execution order: mirror the Volcano open() cascade. A blocking input
    // (breaker edge) is drained during the parent's open, so pipelines
    // under breaker edges start and complete before the parent's pipeline
    // emits. Rank components by recursing into breaker children first
    // (hash-join build before probe), then streaming children.
    let mut comp_rank: Vec<Option<usize>> = vec![None; n];
    let mut next_rank = 0usize;
    fn assign(
        plan: &PhysicalPlan,
        node: NodeId,
        comp: &mut Vec<usize>,
        comp_rank: &mut Vec<Option<usize>>,
        next_rank: &mut usize,
    ) {
        let children = plan.node(node).children.clone();
        for (ci, &c) in children.iter().enumerate() {
            if is_breaker_edge(plan, node, ci) {
                assign(plan, c, comp, comp_rank, next_rank);
            }
        }
        for (ci, &c) in children.iter().enumerate() {
            if !is_breaker_edge(plan, node, ci) {
                assign(plan, c, comp, comp_rank, next_rank);
            }
        }
        let root = find(comp, node);
        if comp_rank[root].is_none() {
            comp_rank[root] = Some(*next_rank);
            *next_rank += 1;
        }
    }
    assign(plan, plan.root, &mut comp, &mut comp_rank, &mut next_rank);

    // Group nodes by component, ranked.
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); next_rank];
    for id in 0..n {
        let c = find(&mut comp, id);
        if let Some(rank) = comp_rank[c] {
            groups[rank].push(id);
        }
    }
    for g in &mut groups {
        g.sort_unstable();
    }

    // Mark nested-loop inner nodes (within the same pipeline as the NLJ).
    let mut nl_inner = vec![false; n];
    for id in 0..n {
        if let OperatorKind::NestedLoopJoin { .. } = plan.node(id).op {
            let inner_root = plan.node(id).children[1];
            let mut stack = vec![inner_root];
            while let Some(x) = stack.pop() {
                nl_inner[x] = true;
                stack.extend_from_slice(&plan.node(x).children);
            }
        }
    }

    groups
        .into_iter()
        .enumerate()
        .map(|(pid, nodes)| {
            let in_pipe = |x: NodeId| nodes.binary_search(&x).is_ok();
            let driver_nodes: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&id| {
                    let no_child_inside = plan.node(id).children.iter().all(|&c| !in_pipe(c));
                    no_child_inside && !nl_inner[id]
                })
                .collect();
            let batch_sort_nodes = nodes
                .iter()
                .copied()
                .filter(|&id| matches!(plan.node(id).op, OperatorKind::BatchSort { .. }))
                .collect();
            let index_seek_nodes = nodes
                .iter()
                .copied()
                .filter(|&id| matches!(plan.node(id).op, OperatorKind::IndexSeek { .. }))
                .collect();
            let nl_inner_nodes = nodes.iter().copied().filter(|&id| nl_inner[id]).collect();
            Pipeline {
                id: pid,
                nodes,
                driver_nodes,
                nl_inner_nodes,
                batch_sort_nodes,
                index_seek_nodes,
            }
        })
        .collect()
}

/// Weight of `pipeline` for query-level progress (eq. (5)): Σ E_i within
/// the pipeline over Σ E_i in the whole plan. Computable from the plan
/// alone — the online monitor uses it at query registration, before any
/// execution feedback exists.
pub fn pipeline_weight(plan: &PhysicalPlan, pipeline: &Pipeline) -> f64 {
    let total = plan.total_est_rows();
    if total <= 0.0 {
        return 0.0;
    }
    let p: f64 = pipeline.nodes.iter().map(|&n| plan.node(n).est_rows).sum();
    p / total
}

/// Map each node to its pipeline id. Indexed by [`NodeId`].
pub fn pipeline_of(plan: &PhysicalPlan, pipelines: &[Pipeline]) -> Vec<usize> {
    let mut out = vec![usize::MAX; plan.len()];
    for p in pipelines {
        for &nid in &p.nodes {
            out[nid] = p.id;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, PlanNode, Predicate};

    fn node(op: OperatorKind, children: Vec<NodeId>, out_cols: usize) -> PlanNode {
        PlanNode { op, children, est_rows: 10.0, est_row_bytes: 8.0, out_cols }
    }

    /// scan(0) -> filter(1) -> hashjoin(4) <- scan(2) -> sort... build side.
    ///
    /// ```text
    ///        HashJoin(4)
    ///        /        \
    ///   Filter(1)    Scan(2)   <- build side (breaker edge)
    ///      |
    ///   Scan(0)
    /// ```
    fn hash_join_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "a".into(), cols: vec![0] }, vec![], 1),
                node(
                    OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: 0 },
                    },
                    vec![0],
                    1,
                ),
                node(OperatorKind::TableScan { table: "b".into(), cols: vec![0] }, vec![], 1),
                node(OperatorKind::Top { n: 5 }, vec![4], 2),
                node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![1, 2], 2),
            ],
            root: 3,
        }
    }

    #[test]
    fn hash_join_splits_build_side() {
        let plan = hash_join_plan();
        let pipes = decompose(&plan);
        assert_eq!(pipes.len(), 2);
        // Build pipeline (scan b) completes first.
        let build = &pipes[0];
        assert_eq!(build.nodes, vec![2]);
        assert_eq!(build.driver_nodes, vec![2]);
        // Probe pipeline: scan a, filter, join, top.
        let probe = &pipes[1];
        assert_eq!(probe.nodes, vec![0, 1, 3, 4]);
        assert_eq!(probe.driver_nodes, vec![0]);
    }

    /// Sort splits; the sort node becomes a driver of the parent pipeline.
    #[test]
    fn sort_is_driver_of_parent_pipeline() {
        let plan = PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "a".into(), cols: vec![0] }, vec![], 1),
                node(OperatorKind::Sort { key_cols: vec![0] }, vec![0], 1),
                node(OperatorKind::Top { n: 3 }, vec![1], 1),
            ],
            root: 2,
        };
        let pipes = decompose(&plan);
        assert_eq!(pipes.len(), 2);
        assert_eq!(pipes[0].nodes, vec![0]);
        assert_eq!(pipes[1].nodes, vec![1, 2]);
        assert_eq!(pipes[1].driver_nodes, vec![1]);
    }

    /// Nested-loop inner nodes are excluded from drivers, mirrored after
    /// the paper's Figure 2.
    #[test]
    fn nlj_inner_not_driver() {
        let plan = PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "o".into(), cols: vec![0] }, vec![], 1),
                node(
                    OperatorKind::IndexSeek {
                        table: "i".into(),
                        key_col: 0,
                        cols: vec![0],
                        seek: crate::plan::SeekKind::BoundParam,
                    },
                    vec![],
                    1,
                ),
                node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![0, 1], 2),
            ],
            root: 2,
        };
        let pipes = decompose(&plan);
        assert_eq!(pipes.len(), 1);
        let p = &pipes[0];
        assert_eq!(p.driver_nodes, vec![0]);
        assert_eq!(p.nl_inner_nodes, vec![1]);
        assert_eq!(p.index_seek_nodes, vec![1]);
    }

    #[test]
    fn batch_sort_stays_in_pipeline() {
        let plan = PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "o".into(), cols: vec![0] }, vec![], 1),
                node(OperatorKind::BatchSort { key_col: 0, batch: 100 }, vec![0], 1),
                node(
                    OperatorKind::IndexSeek {
                        table: "i".into(),
                        key_col: 0,
                        cols: vec![0],
                        seek: crate::plan::SeekKind::BoundParam,
                    },
                    vec![],
                    1,
                ),
                node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![1, 2], 2),
            ],
            root: 3,
        };
        let pipes = decompose(&plan);
        assert_eq!(pipes.len(), 1, "batch sort must not break the pipeline");
        assert_eq!(pipes[0].batch_sort_nodes, vec![1]);
        assert_eq!(pipes[0].driver_nodes, vec![0]);
    }

    #[test]
    fn pipeline_of_maps_every_node() {
        let plan = hash_join_plan();
        let pipes = decompose(&plan);
        let map = pipeline_of(&plan, &pipes);
        assert_eq!(map.len(), plan.len());
        for (nid, &pid) in map.iter().enumerate() {
            assert!(pipes[pid].contains(nid), "node {nid} not in pipeline {pid}");
        }
    }
}
