//! Merge join over two sorted inputs.
//!
//! Both children stream within the same pipeline (both their leaves are
//! driver nodes — the paper's "dominant inputs" for a merge pipeline).
//! Duplicate keys on the right are buffered per group so left duplicates
//! can replay the group (standard many-to-many merge join).

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::NodeId;
use crate::tuple::Tuple;

pub struct MergeJoinExec<'a> {
    node: NodeId,
    left_key: usize,
    right_key: usize,
    left: Box<dyn Executor + 'a>,
    right: Box<dyn Executor + 'a>,
    left_row: Option<Tuple>,
    /// Current right-side group (rows sharing `group_key`).
    group: Vec<Tuple>,
    group_key: i64,
    group_pos: usize,
    /// Lookahead row beyond the current group.
    right_ahead: Option<Tuple>,
    right_done: bool,
}

impl<'a> MergeJoinExec<'a> {
    pub fn new(
        node: NodeId,
        left_key: usize,
        right_key: usize,
        left: Box<dyn Executor + 'a>,
        right: Box<dyn Executor + 'a>,
    ) -> Self {
        MergeJoinExec {
            node,
            left_key,
            right_key,
            left,
            right,
            left_row: None,
            group: Vec::new(),
            group_key: 0,
            group_pos: 0,
            right_ahead: None,
            right_done: false,
        }
    }

    /// Load the next right-side group from the lookahead row.
    fn fill_group(&mut self, ctx: &mut ExecContext) -> bool {
        self.group.clear();
        self.group_pos = 0;
        let first = match self.right_ahead.take() {
            Some(t) => t,
            None => {
                self.right_done = true;
                return false;
            }
        };
        self.group_key = first.get(self.right_key);
        self.group.push(first);
        while let Some(t) = self.right.next(ctx) {
            ctx.charge_input(self.node, 5);
            if t.get(self.right_key) == self.group_key {
                self.group.push(t);
            } else {
                self.right_ahead = Some(t);
                break;
            }
        }
        true
    }

    fn advance_left(&mut self, ctx: &mut ExecContext) {
        self.left_row = self.left.next(ctx);
        if self.left_row.is_some() {
            ctx.charge_input(self.node, 5);
        }
        self.group_pos = 0;
    }
}

impl Executor for MergeJoinExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.left.open(ctx);
        self.right.open(ctx);
        self.left_row = self.left.next(ctx);
        if self.left_row.is_some() {
            ctx.charge_input(self.node, 5);
        }
        self.right_ahead = self.right.next(ctx);
        if self.right_ahead.is_some() {
            ctx.charge_input(self.node, 5);
        }
        self.right_done = false;
        self.fill_group(ctx);
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        unimplemented!("merge join cannot appear on the inner side of a nested loop");
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        loop {
            let l = self.left_row?;
            if self.group.is_empty() && self.right_done {
                return None;
            }
            let lk = l.get(self.left_key);
            if lk < self.group_key || self.group.is_empty() {
                self.advance_left(ctx);
                continue;
            }
            if lk > self.group_key {
                if !self.fill_group(ctx) {
                    return None;
                }
                continue;
            }
            // Keys equal: emit the cross-pairs for this left row.
            if self.group_pos < self.group.len() {
                let out = l.concat(&self.group[self.group_pos]);
                self.group_pos += 1;
                ctx.tick(self.node, 5);
                return Some(out);
            }
            self.advance_left(ctx);
        }
    }
}
