//! Hash (blocking) and stream (sorted-input) aggregation.

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::{AggFunc, NodeId};
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Fixed-size group key (up to 4 grouping columns).
type GroupKey = [i64; 4];

fn group_key(t: &Tuple, cols: &[usize]) -> GroupKey {
    debug_assert!(cols.len() <= 4, "at most 4 grouping columns supported");
    let mut k = [i64::MIN; 4];
    for (i, &c) in cols.iter().enumerate() {
        k[i] = t.get(c);
    }
    k
}

/// Running aggregate state.
#[derive(Debug, Clone, Copy)]
enum AggState {
    Count(u64),
    Sum(i64),
    Min(i64),
    Max(i64),
}

impl AggState {
    fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum { .. } => AggState::Sum(0),
            AggFunc::Min { .. } => AggState::Min(i64::MAX),
            AggFunc::Max { .. } => AggState::Max(i64::MIN),
        }
    }

    #[inline]
    fn update(&mut self, f: AggFunc, t: &Tuple) {
        match (self, f) {
            (AggState::Count(c), AggFunc::Count) => *c += 1,
            (AggState::Sum(s), AggFunc::Sum { col }) => *s = s.wrapping_add(t.get(col)),
            (AggState::Min(m), AggFunc::Min { col }) => *m = (*m).min(t.get(col)),
            (AggState::Max(m), AggFunc::Max { col }) => *m = (*m).max(t.get(col)),
            _ => unreachable!("aggregate state/function mismatch"),
        }
    }

    fn value(&self) -> i64 {
        match *self {
            AggState::Count(c) => c as i64,
            AggState::Sum(s) => s,
            AggState::Min(m) => m,
            AggState::Max(m) => m,
        }
    }
}

fn emit_group(key: &GroupKey, n_group_cols: usize, states: &[AggState]) -> Tuple {
    let mut t = Tuple::new();
    for v in key.iter().take(n_group_cols) {
        t.push(*v);
    }
    for s in states {
        t.push(s.value());
    }
    t
}

/// Blocking hash aggregation: consumes the input in `open`, emits one row
/// per group. Group emission order is made deterministic by sorting keys.
pub struct HashAggregateExec<'a> {
    node: NodeId,
    /// Plan node of the child: drain-phase work belongs to the input
    /// pipeline (the aggregate node itself is a driver of the pipeline
    /// above).
    child_node: NodeId,
    group_cols: Vec<usize>,
    aggs: Vec<AggFunc>,
    child: Box<dyn Executor + 'a>,
    out: Vec<Tuple>,
    pos: usize,
}

impl<'a> HashAggregateExec<'a> {
    pub fn new(
        node: NodeId,
        child_node: NodeId,
        group_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
        child: Box<dyn Executor + 'a>,
    ) -> Self {
        HashAggregateExec { node, child_node, group_cols, aggs, child, out: Vec::new(), pos: 0 }
    }
}

impl Executor for HashAggregateExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
        self.out.clear();
        self.pos = 0;
        let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
        while let Some(t) = self.child.next(ctx) {
            ctx.charge_input(self.child_node, 7);
            let key = group_key(&t, &self.group_cols);
            let states = groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|&f| AggState::new(f)).collect());
            for (s, &f) in states.iter_mut().zip(&self.aggs) {
                s.update(f, &t);
            }
        }
        let group_bytes =
            groups.len() as u64 * 8 * (self.group_cols.len() + self.aggs.len()) as u64;
        if group_bytes > ctx.memory_budget() {
            ctx.write_bytes(self.child_node, group_bytes);
            ctx.read_bytes(self.child_node, group_bytes);
        }
        let mut keys: Vec<GroupKey> = groups.keys().copied().collect();
        keys.sort_unstable();
        self.out = keys.iter().map(|k| emit_group(k, self.group_cols.len(), &groups[k])).collect();
        // The group table is materialized: its size is now exactly known,
        // before the pipeline this aggregate drives has started.
        ctx.report_materialized(self.node, self.out.len() as u64);
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        self.pos = 0;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pos >= self.out.len() {
            return None;
        }
        let t = self.out[self.pos];
        self.pos += 1;
        // Emitting traverses the materialized group table (byte signal for
        // the bytes-processed model at hash-aggregate driver nodes).
        ctx.read_bytes(self.node, t.width_bytes());
        ctx.tick(self.node, 7);
        Some(t)
    }
}

/// Streaming aggregation over an input sorted by the grouping columns.
pub struct StreamAggregateExec<'a> {
    node: NodeId,
    group_cols: Vec<usize>,
    aggs: Vec<AggFunc>,
    child: Box<dyn Executor + 'a>,
    cur_key: Option<GroupKey>,
    states: Vec<AggState>,
    done: bool,
}

impl<'a> StreamAggregateExec<'a> {
    pub fn new(
        node: NodeId,
        group_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
        child: Box<dyn Executor + 'a>,
    ) -> Self {
        StreamAggregateExec {
            node,
            group_cols,
            aggs,
            child,
            cur_key: None,
            states: Vec::new(),
            done: false,
        }
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggs.iter().map(|&f| AggState::new(f)).collect()
    }
}

impl Executor for StreamAggregateExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
        self.cur_key = None;
        self.done = false;
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.child.reopen(ctx, binding);
        self.cur_key = None;
        self.done = false;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.done {
            return None;
        }
        loop {
            match self.child.next(ctx) {
                Some(t) => {
                    ctx.charge_input(self.node, 8);
                    let key = group_key(&t, &self.group_cols);
                    match self.cur_key {
                        Some(cur) if cur == key => {
                            for (s, &f) in self.states.iter_mut().zip(&self.aggs) {
                                s.update(f, &t);
                            }
                        }
                        Some(cur) => {
                            // Group boundary: emit the finished group, start new.
                            let out = emit_group(&cur, self.group_cols.len(), &self.states);
                            self.cur_key = Some(key);
                            self.states = self.fresh_states();
                            for (s, &f) in self.states.iter_mut().zip(&self.aggs) {
                                s.update(f, &t);
                            }
                            ctx.tick(self.node, 8);
                            return Some(out);
                        }
                        None => {
                            self.cur_key = Some(key);
                            self.states = self.fresh_states();
                            for (s, &f) in self.states.iter_mut().zip(&self.aggs) {
                                s.update(f, &t);
                            }
                        }
                    }
                }
                None => {
                    self.done = true;
                    if let Some(cur) = self.cur_key.take() {
                        let out = emit_group(&cur, self.group_cols.len(), &self.states);
                        ctx.tick(self.node, 8);
                        return Some(out);
                    }
                    return None;
                }
            }
        }
    }
}
