//! Full (blocking) sort and partial batch sort.

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::NodeId;
use crate::tuple::Tuple;
use std::cmp::Ordering;

fn cmp_keys(a: &Tuple, b: &Tuple, keys: &[usize]) -> Ordering {
    for &k in keys {
        match a.get(k).cmp(&b.get(k)) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Full sort: consumes its input in `open` (pipeline breaker), emits in
/// key order. Inputs larger than the memory budget pay one external-merge
/// pass (write + read of the whole input).
pub struct SortExec<'a> {
    node: NodeId,
    /// Plan node of the child: drain-phase work (inserts, comparison
    /// passes, external-sort I/O) belongs to the *input pipeline*.
    child_node: NodeId,
    keys: Vec<usize>,
    child: Box<dyn Executor + 'a>,
    buf: Vec<Tuple>,
    pos: usize,
}

impl<'a> SortExec<'a> {
    pub fn new(
        node: NodeId,
        child_node: NodeId,
        keys: Vec<usize>,
        child: Box<dyn Executor + 'a>,
    ) -> Self {
        SortExec { node, child_node, keys, child, buf: Vec::new(), pos: 0 }
    }
}

impl Executor for SortExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
        self.buf.clear();
        self.pos = 0;
        let mut bytes = 0u64;
        while let Some(t) = self.child.next(ctx) {
            ctx.charge_input(self.child_node, 9);
            bytes += t.width_bytes();
            self.buf.push(t);
        }
        if !self.buf.is_empty() {
            let n = self.buf.len() as f64;
            // Comparison cost of the sort itself.
            ctx.charge_cpu(self.child_node, 0.02 * n * (n + 1.0).log2());
            if bytes > ctx.memory_budget() {
                // One external merge pass over the whole input.
                ctx.write_bytes(self.child_node, bytes);
                ctx.read_bytes(self.child_node, bytes);
            }
        }
        let keys = self.keys.clone();
        self.buf.sort_by(|a, b| cmp_keys(a, b, &keys));
        // The sorted run is materialized: its size is now exactly known,
        // before the pipeline this sort drives has started.
        ctx.report_materialized(self.node, self.buf.len() as u64);
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        // Rescan of an already sorted buffer.
        self.pos = 0;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let t = self.buf[self.pos];
        self.pos += 1;
        // Emitting re-reads the materialized (possibly external) run, which
        // is what the bytes-processed model observes at a sort-output
        // driver node.
        ctx.read_bytes(self.node, t.width_bytes());
        ctx.tick(self.node, 9);
        Some(t)
    }
}

/// Partial batch sort (\[9\]; paper §5.1): repeatedly consume up to `batch`
/// rows, sort them by `key_col`, emit them, refill. Only *partially*
/// blocking — it stays inside its pipeline, and with large batches the
/// driver nodes below it finish long before the pipeline does, which is
/// precisely what breaks DNE-style estimators and motivates BATCHDNE.
pub struct BatchSortExec<'a> {
    node: NodeId,
    key_col: usize,
    batch: usize,
    child: Box<dyn Executor + 'a>,
    buf: Vec<Tuple>,
    pos: usize,
    input_done: bool,
}

impl<'a> BatchSortExec<'a> {
    pub fn new(node: NodeId, key_col: usize, batch: usize, child: Box<dyn Executor + 'a>) -> Self {
        assert!(batch > 0, "batch size must be positive");
        BatchSortExec { node, key_col, batch, child, buf: Vec::new(), pos: 0, input_done: false }
    }

    fn refill(&mut self, ctx: &mut ExecContext) {
        self.buf.clear();
        self.pos = 0;
        while self.buf.len() < self.batch {
            match self.child.next(ctx) {
                Some(t) => {
                    ctx.charge_input(self.node, 10);
                    self.buf.push(t);
                }
                None => {
                    self.input_done = true;
                    break;
                }
            }
        }
        if !self.buf.is_empty() {
            let n = self.buf.len() as f64;
            ctx.charge_cpu(self.node, 0.02 * n * (n + 1.0).log2());
            let key = self.key_col;
            self.buf.sort_by_key(|t| t.get(key));
        }
    }
}

impl Executor for BatchSortExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
        self.buf.clear();
        self.pos = 0;
        self.input_done = false;
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.child.reopen(ctx, binding);
        self.buf.clear();
        self.pos = 0;
        self.input_done = false;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pos >= self.buf.len() {
            if self.input_done {
                return None;
            }
            self.refill(ctx);
            if self.buf.is_empty() {
                return None;
            }
        }
        let t = self.buf[self.pos];
        self.pos += 1;
        ctx.tick(self.node, 10);
        Some(t)
    }
}
