//! Hash join with Grace-style spilling.
//!
//! The build side (child 1) is consumed during `open` — it forms its own
//! pipeline. If the build side exceeds the memory budget, a fraction of
//! its 16 hash partitions is spilled: spilled build rows are written out,
//! probe rows hashing to spilled partitions are written out during the
//! probe phase, and after the probe input is exhausted the spilled
//! partitions are read back and joined. Per the paper's counter
//! convention, the extra work appears both as additional bytes
//! read/written at the join node and as the join's GetNext calls arriving
//! late — exactly the behaviour that hurts estimators assuming smooth
//! per-tuple work.

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::NodeId;
use crate::tuple::Tuple;
use std::collections::HashMap;

const N_PARTITIONS: u64 = 16;

#[inline]
fn partition_of(key: i64) -> u64 {
    // SplitMix-style finalizer for partition spread.
    let mut z = key as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % N_PARTITIONS
}

enum Phase {
    /// Streaming probe against the in-memory partitions.
    Probe,
    /// Replaying spilled probe rows against re-read spilled partitions.
    SpillReplay {
        idx: usize,
    },
    Done,
}

/// Hash join executor; children `[probe, build]`, output `probe ++ build`.
pub struct HashJoinExec<'a> {
    node: NodeId,
    /// Plan node of the build child: build-phase work (inserts, build-side
    /// spill writes) is charged there so it is attributed to the *build
    /// pipeline*, matching the pipeline model of \[6\].
    build_node: NodeId,
    probe_key: usize,
    build_key: usize,
    probe: Box<dyn Executor + 'a>,
    build: Box<dyn Executor + 'a>,
    /// In-memory hash table over non-spilled partitions.
    table: HashMap<i64, Vec<Tuple>>,
    /// Hash table for spilled partitions (populated lazily in the replay
    /// phase; rows physically "live on disk" until then).
    spilled_table: HashMap<i64, Vec<Tuple>>,
    spilled_build: Vec<Tuple>,
    spilled_probe: Vec<Tuple>,
    /// Partitions `0..mem_parts` stay in memory.
    mem_parts: u64,
    /// Pending matches for the current probe row.
    pending: Vec<Tuple>,
    pending_probe: Tuple,
    pending_pos: usize,
    phase: Phase,
}

impl<'a> HashJoinExec<'a> {
    pub fn new(
        node: NodeId,
        build_node: NodeId,
        probe_key: usize,
        build_key: usize,
        probe: Box<dyn Executor + 'a>,
        build: Box<dyn Executor + 'a>,
    ) -> Self {
        HashJoinExec {
            node,
            build_node,
            probe_key,
            build_key,
            probe,
            build,
            table: HashMap::new(),
            spilled_table: HashMap::new(),
            spilled_build: Vec::new(),
            spilled_probe: Vec::new(),
            mem_parts: N_PARTITIONS,
            pending: Vec::new(),
            pending_probe: Tuple::new(),
            pending_pos: 0,
            phase: Phase::Probe,
        }
    }

    fn set_pending(&mut self, probe_row: Tuple, matches: &[Tuple]) {
        self.pending.clear();
        self.pending.extend_from_slice(matches);
        self.pending_probe = probe_row;
        self.pending_pos = 0;
    }

    fn emit_pending(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pending_pos < self.pending.len() {
            let out = self.pending_probe.concat(&self.pending[self.pending_pos]);
            self.pending_pos += 1;
            ctx.tick(self.node, 4);
            return Some(out);
        }
        None
    }

    /// Transition into the spill-replay phase: read back spilled build rows
    /// and build their hash table.
    fn start_spill_replay(&mut self, ctx: &mut ExecContext) {
        for row in std::mem::take(&mut self.spilled_build) {
            ctx.read_bytes(self.node, row.width_bytes());
            ctx.charge_input(self.node, 4);
            self.spilled_table.entry(row.get(self.build_key)).or_default().push(row);
        }
        self.phase = Phase::SpillReplay { idx: 0 };
    }
}

impl Executor for HashJoinExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.build.open(ctx);
        let mut build_rows: Vec<Tuple> = Vec::new();
        let mut build_bytes = 0u64;
        while let Some(t) = self.build.next(ctx) {
            ctx.charge_input(self.build_node, 4);
            build_bytes += t.width_bytes();
            build_rows.push(t);
        }
        let budget = ctx.memory_budget();
        self.mem_parts = if build_bytes <= budget {
            N_PARTITIONS
        } else {
            ((budget as u128 * N_PARTITIONS as u128 / build_bytes.max(1) as u128) as u64)
                .clamp(1, N_PARTITIONS - 1)
        };
        for row in build_rows {
            let key = row.get(self.build_key);
            if partition_of(key) < self.mem_parts {
                self.table.entry(key).or_default().push(row);
            } else {
                ctx.write_bytes(self.build_node, row.width_bytes());
                self.spilled_build.push(row);
            }
        }
        self.probe.open(ctx);
        self.phase = Phase::Probe;
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        unimplemented!("hash join cannot appear on the inner side of a nested loop");
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        loop {
            if let Some(out) = self.emit_pending(ctx) {
                return Some(out);
            }
            match self.phase {
                Phase::Probe => match self.probe.next(ctx) {
                    Some(t) => {
                        ctx.charge_input(self.node, 4);
                        let key = t.get(self.probe_key);
                        if partition_of(key) < self.mem_parts {
                            if let Some(matches) = self.table.get(&key) {
                                let matches = matches.clone();
                                self.set_pending(t, &matches);
                            }
                        } else {
                            ctx.write_bytes(self.node, t.width_bytes());
                            self.spilled_probe.push(t);
                        }
                    }
                    None => {
                        if self.spilled_build.is_empty() && self.spilled_probe.is_empty() {
                            self.phase = Phase::Done;
                        } else {
                            self.start_spill_replay(ctx);
                        }
                    }
                },
                Phase::SpillReplay { idx } => {
                    if idx >= self.spilled_probe.len() {
                        self.phase = Phase::Done;
                        continue;
                    }
                    let t = self.spilled_probe[idx];
                    self.phase = Phase::SpillReplay { idx: idx + 1 };
                    ctx.read_bytes(self.node, t.width_bytes());
                    ctx.charge_input(self.node, 4);
                    let key = t.get(self.probe_key);
                    if let Some(matches) = self.spilled_table.get(&key) {
                        let matches = matches.clone();
                        self.set_pending(t, &matches);
                    }
                }
                Phase::Done => return None,
            }
        }
    }
}
