//! Nested-loop join (nested iteration).
//!
//! For every outer row the inner subtree is re-opened with the outer key
//! as the correlated binding. The inner side is typically an
//! [`crate::exec::IndexSeekExec`] (tuned designs) or a rescan
//! `Filter(BoundCmp) ∘ TableScan` (untuned designs). When the inner data
//! distribution is skewed, per-outer-row work varies wildly — the failure
//! mode of driver-node estimators the paper's Section 5.1.1 targets.

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::NodeId;
use crate::tuple::Tuple;

pub struct NestedLoopJoinExec<'a> {
    node: NodeId,
    outer_key: usize,
    outer: Box<dyn Executor + 'a>,
    inner: Box<dyn Executor + 'a>,
    cur_outer: Option<Tuple>,
}

impl<'a> NestedLoopJoinExec<'a> {
    pub fn new(
        node: NodeId,
        outer_key: usize,
        outer: Box<dyn Executor + 'a>,
        inner: Box<dyn Executor + 'a>,
    ) -> Self {
        NestedLoopJoinExec { node, outer_key, outer, inner, cur_outer: None }
    }
}

impl Executor for NestedLoopJoinExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.outer.open(ctx);
        self.inner.open(ctx);
        self.cur_outer = None;
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        // A nested-loop join can itself sit on the inner side of another
        // nested loop only in plans we do not generate; rewind defensively.
        self.outer.reopen(ctx, binding);
        self.cur_outer = None;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        loop {
            if let Some(o) = self.cur_outer {
                if let Some(i) = self.inner.next(ctx) {
                    ctx.tick(self.node, 6);
                    return Some(o.concat(&i));
                }
                self.cur_outer = None;
            }
            let o = self.outer.next(ctx)?;
            let binding = o.get(self.outer_key);
            self.inner.reopen(ctx, binding);
            self.cur_outer = Some(o);
        }
    }
}
