//! Multi-query execution: the paper's named future-work extension
//! (Section 2, citing Luo et al.'s multi-query progress indicators \[12\]).
//!
//! Queries share one virtual machine under **time-quantum round-robin**:
//! each query runs on its own thread, but execution is strictly
//! serialized — a [`TurnScheduler`] hands the (virtual) CPU to one query
//! at a time, preempting it after `quantum_ticks` charged operations, even
//! in the middle of blocking phases (hash builds, sort drains). While
//! preempted, a query's counters freeze but the shared clock advances, so
//! its trace shows exactly the stalls a concurrent system produces.
//!
//! Execution remains fully deterministic: the turn order is fixed and the
//! threads never run concurrently, so a given (plans, config) pair always
//! yields the same traces.

use crate::catalog::Catalog;
use crate::context::{ExecConfig, ExecContext};
use crate::exec::build_executor;
use crate::pipeline::{decompose, pipeline_of};
use crate::plan::PhysicalPlan;
use crate::trace::{QueryRun, TraceTap};
use std::sync::{Arc, Condvar, Mutex};

/// Concurrency configuration.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Charged operations (ticks, byte transfers, seeks) per scheduling
    /// quantum before the query is preempted.
    pub quantum_ticks: u32,
    /// Per-query execution configuration (seeds are derived per query).
    pub exec: ExecConfig,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig { quantum_ticks: 512, exec: ExecConfig::default() }
    }
}

#[derive(Debug)]
struct SchedState {
    /// Whose turn it is.
    turn: usize,
    /// Which queries are still running.
    live: Vec<bool>,
    /// Shared virtual clock: the time the last-running query reached.
    global: f64,
}

/// Strict round-robin turn scheduler over a shared virtual clock.
#[derive(Debug)]
pub struct TurnScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl TurnScheduler {
    pub fn new(n: usize) -> Self {
        TurnScheduler {
            state: Mutex::new(SchedState { turn: 0, live: vec![true; n], global: 0.0 }),
            cv: Condvar::new(),
        }
    }

    fn rotate(state: &mut SchedState, from: usize) {
        let n = state.live.len();
        for step in 1..=n {
            let cand = (from + step) % n;
            if state.live[cand] {
                state.turn = cand;
                return;
            }
        }
        // Nobody else is live; keep the turn (caller may be finishing).
        state.turn = from;
    }

    /// Block until it is `me`'s turn; returns the shared clock to resume
    /// from.
    pub fn wait_turn(&self, me: usize) -> f64 {
        let mut st = self.state.lock().expect("scheduler poisoned");
        while st.turn != me {
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
        st.global
    }

    /// Yield after a quantum: publish `clock`, pass the turn on, and block
    /// until scheduled again. Returns the clock to resume from.
    pub fn yield_turn(&self, me: usize, clock: f64) -> f64 {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.global = st.global.max(clock);
        Self::rotate(&mut st, me);
        if st.turn == me {
            return st.global; // alone: keep running
        }
        self.cv.notify_all();
        while st.turn != me {
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
        st.global
    }

    /// Mark `me` finished and hand the machine to the next live query.
    pub fn finish(&self, me: usize, clock: f64) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.global = st.global.max(clock);
        st.live[me] = false;
        Self::rotate(&mut st, me);
        self.cv.notify_all();
    }
}

/// Execute `plans` concurrently on one shared virtual clock; returns one
/// [`QueryRun`] per plan (same order). All traces use the shared time
/// axis, so progress curves of different queries are comparable.
pub fn run_concurrent(
    catalog: &Catalog<'_>,
    plans: &[PhysicalPlan],
    cfg: &ConcurrentConfig,
) -> Vec<QueryRun> {
    run_concurrent_inner(catalog, plans, cfg, None)
}

/// [`run_concurrent`] with a live observation stream: every query sends
/// its snapshot / thinning / termination events to (a clone of) `tap`,
/// tagged with the query's index in `plans`. Because execution is
/// strictly serialized by the turn scheduler, the interleaved event
/// stream is deterministic, and tapping does not alter execution — the
/// returned runs are identical to an untapped invocation.
pub fn run_concurrent_tapped(
    catalog: &Catalog<'_>,
    plans: &[PhysicalPlan],
    cfg: &ConcurrentConfig,
    tap: impl Into<TraceTap>,
) -> Vec<QueryRun> {
    run_concurrent_inner(catalog, plans, cfg, Some(tap.into()))
}

fn run_concurrent_inner(
    catalog: &Catalog<'_>,
    plans: &[PhysicalPlan],
    cfg: &ConcurrentConfig,
    tap: Option<TraceTap>,
) -> Vec<QueryRun> {
    for (qi, plan) in plans.iter().enumerate() {
        if let Err(e) = plan.validate() {
            panic!("invalid plan {qi}: {e}");
        }
    }
    let sched = Arc::new(TurnScheduler::new(plans.len()));

    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(qi, plan)| {
                let sched = Arc::clone(&sched);
                let tap = tap.clone();
                let exec_cfg = ExecConfig {
                    seed: cfg.exec.seed ^ (qi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..cfg.exec.clone()
                };
                let quantum = cfg.quantum_ticks.max(1);
                scope.spawn(move || {
                    let pipelines = decompose(plan);
                    let pmap = pipeline_of(plan, &pipelines);
                    let mut ctx = ExecContext::new(&exec_cfg, plan.len(), pmap, pipelines.len());
                    if let Some(tap) = tap {
                        ctx.attach_tap(tap, qi);
                    }
                    ctx.attach_scheduler(Arc::clone(&sched), qi, quantum);
                    let start = sched.wait_turn(qi);
                    ctx.fast_forward(start);

                    let mut exec = build_executor(plan, plan.root, catalog);
                    exec.open(&mut ctx);
                    let mut result_rows = 0u64;
                    while let Some(t) = exec.next(&mut ctx) {
                        result_rows += 1;
                        ctx.write_bytes(plan.root, t.width_bytes());
                    }
                    drop(exec);
                    // Finish the trace (which emits the terminal tap
                    // events) *before* handing the turn away: once
                    // `sched.finish` runs, the next query starts emitting,
                    // and terminal events racing it would make the stream
                    // order nondeterministic.
                    let clock = ctx.now();
                    let trace = ctx.finish();
                    sched.finish(qi, clock);
                    QueryRun { plan: plan.clone(), pipelines, trace, result_rows }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::exec::run_plan;
    use crate::plan::{AggFunc, OperatorKind, PlanNode};
    use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
    use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};

    fn db(rows: usize) -> Database {
        let mut db = Database::new("c");
        let meta = TableMeta::new(
            "t",
            64,
            vec![
                ColumnMeta::new("id", ColumnRole::PrimaryKey),
                ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 9 }),
            ],
        );
        db.add(Table::new(
            meta,
            vec![
                Column { name: "id".into(), data: (1..=rows as i64).collect() },
                Column { name: "v".into(), data: (0..rows as i64).map(|i| i % 10).collect() },
            ],
        ));
        db
    }

    fn scan_plan(rows: usize) -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                children: vec![],
                est_rows: rows as f64,
                est_row_bytes: 16.0,
                out_cols: 2,
            }],
            root: 0,
        }
    }

    /// Aggregate-rooted plan: everything happens in blocking phases, which
    /// the quantum scheduler must still preempt.
    fn agg_plan(rows: usize) -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![
                PlanNode {
                    op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                    children: vec![],
                    est_rows: rows as f64,
                    est_row_bytes: 16.0,
                    out_cols: 2,
                },
                PlanNode {
                    op: OperatorKind::HashAggregate {
                        group_cols: vec![1],
                        aggs: vec![AggFunc::Count],
                    },
                    children: vec![0],
                    est_rows: 10.0,
                    est_row_bytes: 16.0,
                    out_cols: 2,
                },
            ],
            root: 1,
        }
    }

    #[test]
    fn concurrent_results_match_isolated_results() {
        let database = db(500);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);
        let plans = vec![scan_plan(500), agg_plan(500), scan_plan(500)];
        let runs = run_concurrent(&catalog, &plans, &ConcurrentConfig::default());
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].result_rows, 500);
        assert_eq!(runs[1].result_rows, 10);
        assert_eq!(runs[2].result_rows, 500);
        assert_eq!(runs[1].trace.final_k[0], 500);
    }

    #[test]
    fn concurrent_queries_stretch_each_other() {
        let database = db(2000);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);
        let cfg = ConcurrentConfig {
            exec: ExecConfig { cost: CostModel::deterministic(), ..ExecConfig::default() },
            ..Default::default()
        };
        let solo = run_plan(&catalog, &scan_plan(2000), &cfg.exec);
        let runs = run_concurrent(&catalog, &[scan_plan(2000), scan_plan(2000)], &cfg);
        let ratio = runs[0].trace.total_time / solo.trace.total_time;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "expected ~2x stretch from a same-sized competitor, got {ratio:.2}"
        );
        let diff = (runs[0].trace.total_time - runs[1].trace.total_time).abs();
        assert!(diff / runs[0].trace.total_time < 0.15);
    }

    #[test]
    fn blocking_phases_are_preempted_too() {
        // An aggregate-rooted query (all work inside open()) running with a
        // scan must take ~ (agg work + scan work), not run atomically.
        let database = db(4000);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);
        let cfg = ConcurrentConfig {
            quantum_ticks: 128,
            exec: ExecConfig {
                cost: CostModel::deterministic(),
                // Dense snapshots so the preemption gap dominates the
                // inter-snapshot window.
                initial_snapshot_interval: 10.0,
                ..ExecConfig::default()
            },
        };
        let solo_agg = run_plan(&catalog, &agg_plan(4000), &cfg.exec);
        let runs = run_concurrent(&catalog, &[agg_plan(4000), scan_plan(4000)], &cfg);
        let stretch = runs[0].trace.total_time / solo_agg.trace.total_time;
        assert!(
            stretch > 1.4,
            "blocking query must be slowed by its competitor, stretch {stretch:.2}"
        );
        // And its trace must contain preemption stalls: consecutive
        // snapshots where time advances with (almost) no counter movement.
        let t = &runs[0].trace;
        // A competitor quantum of 128 charges is ~55 time units; snapshots
        // are 10 apart, so a window spanning a stall is several times the
        // normal spacing with almost no counter movement.
        let stalled = t.snapshots.windows(2).any(|w| {
            let dk: u64 = (0..w[0].k.len()).map(|i| w[1].k[i] - w[0].k[i]).sum();
            w[1].time > w[0].time + 40.0 && dk < 16
        });
        assert!(stalled, "expected preemption stalls in the blocking query's trace");
    }

    #[test]
    fn deterministic_across_runs() {
        let database = db(1500);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);
        let plans = [agg_plan(1500), scan_plan(1500)];
        let cfg = ConcurrentConfig::default();
        let a = run_concurrent(&catalog, &plans, &cfg);
        let b = run_concurrent(&catalog, &plans, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.total_time, y.trace.total_time);
            assert_eq!(x.trace.final_k, y.trace.final_k);
            assert_eq!(x.trace.snapshots.len(), y.trace.snapshots.len());
        }
    }
}
