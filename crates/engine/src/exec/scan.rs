//! Leaf access paths: table scan, index scan, index seek.

use crate::catalog::SortedIndex;
use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::{NodeId, SeekKind};
use crate::tuple::Tuple;
use prosel_datagen::Table;

/// Sequential heap scan projecting `cols`.
pub struct TableScanExec<'a> {
    node: NodeId,
    cols: Vec<&'a [i64]>,
    row_bytes: u64,
    nrows: usize,
    pos: usize,
}

impl<'a> TableScanExec<'a> {
    pub fn new(node: NodeId, table: &'a Table, cols: Vec<usize>) -> Self {
        TableScanExec {
            node,
            cols: cols.iter().map(|&c| table.column(c)).collect(),
            row_bytes: table.row_bytes() as u64,
            nrows: table.rows(),
            pos: 0,
        }
    }
}

impl Executor for TableScanExec<'_> {
    fn open(&mut self, _ctx: &mut ExecContext) {
        self.pos = 0;
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        self.pos = 0;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pos >= self.nrows {
            return None;
        }
        let mut t = Tuple::new();
        for col in &self.cols {
            t.push(col[self.pos]);
        }
        self.pos += 1;
        ctx.read_bytes(self.node, self.row_bytes);
        ctx.tick(self.node, 0);
        Some(t)
    }
}

/// Full scan in index order: output is sorted by the key column.
pub struct IndexScanExec<'a> {
    node: NodeId,
    index: &'a SortedIndex,
    cols: Vec<&'a [i64]>,
    row_bytes: u64,
    pos: usize,
}

impl<'a> IndexScanExec<'a> {
    pub fn new(node: NodeId, table: &'a Table, index: &'a SortedIndex, cols: Vec<usize>) -> Self {
        IndexScanExec {
            node,
            index,
            cols: cols.iter().map(|&c| table.column(c)).collect(),
            row_bytes: table.row_bytes() as u64,
            pos: 0,
        }
    }
}

impl Executor for IndexScanExec<'_> {
    fn open(&mut self, _ctx: &mut ExecContext) {
        self.pos = 0;
    }

    fn reopen(&mut self, _ctx: &mut ExecContext, _binding: i64) {
        self.pos = 0;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.pos >= self.index.len() {
            return None;
        }
        let row = self.index.rowid_at(self.pos) as usize;
        self.pos += 1;
        let mut t = Tuple::new();
        for col in &self.cols {
            t.push(col[row]);
        }
        ctx.read_bytes(self.node, self.row_bytes);
        ctx.tick(self.node, 1);
        Some(t)
    }
}

/// Index lookup: emits rows matching a static key range or the current
/// nested-loop binding. Seek cost depends on *locality*: consecutive seeks
/// landing near the previous index position are cheap (the effect batch
/// sorts exploit), far jumps pay a random I/O.
pub struct IndexSeekExec<'a> {
    node: NodeId,
    index: &'a SortedIndex,
    cols: Vec<&'a [i64]>,
    row_bytes: u64,
    seek: SeekKind,
    cur: usize,
    end: usize,
    prev_pos: Option<usize>,
}

impl<'a> IndexSeekExec<'a> {
    pub fn new(
        node: NodeId,
        table: &'a Table,
        index: &'a SortedIndex,
        cols: Vec<usize>,
        seek: SeekKind,
    ) -> Self {
        IndexSeekExec {
            node,
            index,
            cols: cols.iter().map(|&c| table.column(c)).collect(),
            row_bytes: table.row_bytes() as u64,
            seek,
            cur: 0,
            end: 0,
            prev_pos: None,
        }
    }

    fn position(&mut self, ctx: &mut ExecContext, lo: usize, hi: usize) {
        // Seeks are cheap when the previous seek landed nearby (batch-sort
        // locality) or when the whole table is buffer-pool resident.
        let cached = self.index.len() as u64 * self.row_bytes <= ctx.cached_table_bytes();
        let local = cached
            || match self.prev_pos {
                Some(p) => (lo as i64 - p as i64).abs() <= ctx.seek_locality_window(),
                None => false,
            };
        ctx.charge_seek(self.node, local);
        self.cur = lo;
        self.end = hi;
        self.prev_pos = Some(hi);
    }
}

impl Executor for IndexSeekExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        match self.seek {
            SeekKind::StaticRange { lo, hi } => {
                let (a, b) = self.index.range(lo, hi);
                self.position(ctx, a, b);
            }
            SeekKind::BoundParam => {
                // Nothing to emit until a binding arrives via reopen().
                self.cur = 0;
                self.end = 0;
            }
        }
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        match self.seek {
            SeekKind::BoundParam => {
                let (a, b) = self.index.equal_range(binding);
                self.position(ctx, a, b);
            }
            SeekKind::StaticRange { lo, hi } => {
                let (a, b) = self.index.range(lo, hi);
                self.position(ctx, a, b);
            }
        }
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.cur >= self.end {
            return None;
        }
        let row = self.index.rowid_at(self.cur) as usize;
        self.cur += 1;
        let mut t = Tuple::new();
        for col in &self.cols {
            t.push(col[row]);
        }
        ctx.read_bytes(self.node, self.row_bytes);
        ctx.tick(self.node, 2);
        Some(t)
    }
}
