//! Volcano-model operator executors.
//!
//! Each physical operator implements [`Executor`]: `open` prepares state
//! (and, for blocking operators, consumes the input — that is where child
//! pipelines run), `next` produces one output row, and `reopen` rebinds a
//! correlated nested-loop parameter and rewinds.
//!
//! Every produced row is charged to the [`ExecContext`] as a GetNext call
//! (K_i), and consuming/auxiliary work (predicate evaluation, hash
//! inserts, sort passes, spill I/O) is charged as CPU or byte costs so the
//! virtual clock reflects realistic per-operator work.

mod aggregate;
mod concurrent;
mod filter;
mod hash_join;
mod merge_join;
mod nl_join;
mod scan;
mod sort;

pub use aggregate::{HashAggregateExec, StreamAggregateExec};
pub use concurrent::{run_concurrent, run_concurrent_tapped, ConcurrentConfig, TurnScheduler};
pub use filter::{ComputeScalarExec, FilterExec, ProjectExec, TopExec};
pub use hash_join::HashJoinExec;
pub use merge_join::MergeJoinExec;
pub use nl_join::NestedLoopJoinExec;
pub use scan::{IndexScanExec, IndexSeekExec, TableScanExec};
pub use sort::{BatchSortExec, SortExec};

use crate::catalog::Catalog;
use crate::context::{ExecConfig, ExecContext};
use crate::pipeline::{decompose, pipeline_of};
use crate::plan::{NodeId, OperatorKind, PhysicalPlan};
use crate::trace::QueryRun;
use crate::tuple::Tuple;

/// A physical operator instance.
pub trait Executor {
    /// Prepare for execution. Blocking operators consume their input here.
    fn open(&mut self, ctx: &mut ExecContext);
    /// Rewind with a new correlated binding (nested-loop inner side).
    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64);
    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple>;
}

/// Recursively instantiate the executor tree for `node`.
pub fn build_executor<'a>(
    plan: &'a PhysicalPlan,
    node: NodeId,
    catalog: &'a Catalog<'a>,
) -> Box<dyn Executor + 'a> {
    let pn = plan.node(node);
    let child = |i: usize| build_executor(plan, pn.children[i], catalog);
    match &pn.op {
        OperatorKind::TableScan { table, cols } => {
            Box::new(TableScanExec::new(node, catalog.table(table), cols.clone()))
        }
        OperatorKind::IndexScan { table, key_col, cols } => Box::new(IndexScanExec::new(
            node,
            catalog.table(table),
            catalog.index_required(table, *key_col),
            cols.clone(),
        )),
        OperatorKind::IndexSeek { table, key_col, cols, seek } => Box::new(IndexSeekExec::new(
            node,
            catalog.table(table),
            catalog.index_required(table, *key_col),
            cols.clone(),
            seek.clone(),
        )),
        OperatorKind::Filter { pred } => Box::new(FilterExec::new(node, pred.clone(), child(0))),
        OperatorKind::HashJoin { probe_key, build_key } => Box::new(HashJoinExec::new(
            node,
            pn.children[1],
            *probe_key,
            *build_key,
            child(0),
            child(1),
        )),
        OperatorKind::MergeJoin { left_key, right_key } => {
            Box::new(MergeJoinExec::new(node, *left_key, *right_key, child(0), child(1)))
        }
        OperatorKind::NestedLoopJoin { outer_key } => {
            Box::new(NestedLoopJoinExec::new(node, *outer_key, child(0), child(1)))
        }
        OperatorKind::HashAggregate { group_cols, aggs } => Box::new(HashAggregateExec::new(
            node,
            pn.children[0],
            group_cols.clone(),
            aggs.clone(),
            child(0),
        )),
        OperatorKind::StreamAggregate { group_cols, aggs } => {
            Box::new(StreamAggregateExec::new(node, group_cols.clone(), aggs.clone(), child(0)))
        }
        OperatorKind::Sort { key_cols } => {
            Box::new(SortExec::new(node, pn.children[0], key_cols.clone(), child(0)))
        }
        OperatorKind::BatchSort { key_col, batch } => {
            Box::new(BatchSortExec::new(node, *key_col, *batch, child(0)))
        }
        OperatorKind::Top { n } => Box::new(TopExec::new(node, *n, child(0))),
        OperatorKind::ComputeScalar { added_cols } => {
            Box::new(ComputeScalarExec::new(node, *added_cols, child(0)))
        }
        OperatorKind::Project { cols } => Box::new(ProjectExec::new(node, cols.clone(), child(0))),
    }
}

/// Execute a plan to completion, producing its observation trace.
///
/// # Panics
/// Panics if the plan fails [`PhysicalPlan::validate`] or references an
/// index missing from the catalog's physical design.
pub fn run_plan(catalog: &Catalog<'_>, plan: &PhysicalPlan, cfg: &ExecConfig) -> QueryRun {
    run_plan_inner(catalog, plan, cfg, None)
}

/// [`run_plan`] with a live observation stream: every retained snapshot
/// (plus thinning and termination events) is sent to `tap` as execution
/// proceeds, tagged with `query`. Tapping does not alter execution — the
/// returned [`QueryRun`] is identical to an untapped run.
///
/// `tap` accepts anything convertible into a [`crate::trace::TraceTap`]:
/// a plain `std::sync::mpsc::Sender<TraceEvent>`, or a routed sink (e.g. a
/// sharded monitor service's tap).
pub fn run_plan_tapped(
    catalog: &Catalog<'_>,
    plan: &PhysicalPlan,
    cfg: &ExecConfig,
    query: usize,
    tap: impl Into<crate::trace::TraceTap>,
) -> QueryRun {
    run_plan_inner(catalog, plan, cfg, Some((tap.into(), query)))
}

fn run_plan_inner(
    catalog: &Catalog<'_>,
    plan: &PhysicalPlan,
    cfg: &ExecConfig,
    tap: Option<(crate::trace::TraceTap, usize)>,
) -> QueryRun {
    if let Err(e) = plan.validate() {
        panic!("invalid plan: {e}\n{}", plan.render());
    }
    let pipelines = decompose(plan);
    let pmap = pipeline_of(plan, &pipelines);
    let mut ctx = ExecContext::new(cfg, plan.len(), pmap, pipelines.len());
    if let Some((tap, query)) = tap {
        ctx.attach_tap(tap, query);
    }
    let mut exec = build_executor(plan, plan.root, catalog);
    exec.open(&mut ctx);
    let mut result_rows = 0u64;
    while let Some(t) = exec.next(&mut ctx) {
        result_rows += 1;
        // Results are written to the client / result spool.
        ctx.write_bytes(plan.root, t.width_bytes());
    }
    drop(exec);
    QueryRun { plan: plan.clone(), pipelines, trace: ctx.finish(), result_rows }
}

/// Convenience: run with a default configuration derived from `seed`.
pub fn run_plan_seeded(catalog: &Catalog<'_>, plan: &PhysicalPlan, seed: u64) -> QueryRun {
    run_plan(catalog, plan, &ExecConfig { seed, ..ExecConfig::default() })
}
