//! Streaming row operators: filter, compute-scalar, top.

use crate::context::ExecContext;
use crate::exec::Executor;
use crate::plan::{NodeId, Predicate};
use crate::tuple::Tuple;

/// Predicate filter. Passes its current nested-loop binding down so that
/// naive (rescan) nested-loop inners can use [`Predicate::BoundCmp`].
pub struct FilterExec<'a> {
    node: NodeId,
    pred: Predicate,
    child: Box<dyn Executor + 'a>,
    binding: i64,
}

impl<'a> FilterExec<'a> {
    pub fn new(node: NodeId, pred: Predicate, child: Box<dyn Executor + 'a>) -> Self {
        FilterExec { node, pred, child, binding: 0 }
    }
}

impl Executor for FilterExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.binding = binding;
        self.child.reopen(ctx, binding);
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        loop {
            let t = self.child.next(ctx)?;
            ctx.charge_input(self.node, 3);
            if self.pred.eval(t.as_slice(), self.binding) {
                ctx.tick(self.node, 3);
                return Some(t);
            }
        }
    }
}

/// Pass-through appending `added` computed columns (deterministic simple
/// derivations standing in for scalar expressions).
pub struct ComputeScalarExec<'a> {
    node: NodeId,
    added: usize,
    child: Box<dyn Executor + 'a>,
}

impl<'a> ComputeScalarExec<'a> {
    pub fn new(node: NodeId, added: usize, child: Box<dyn Executor + 'a>) -> Self {
        ComputeScalarExec { node, added, child }
    }
}

impl Executor for ComputeScalarExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.child.reopen(ctx, binding);
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        let t = self.child.next(ctx)?;
        let mut out = t;
        let base: i64 = t.as_slice().iter().sum();
        for i in 0..self.added {
            out.push(base.wrapping_add(i as i64) % 1_000_003);
        }
        ctx.tick(self.node, 12);
        Some(out)
    }
}

/// Projection: keep only the listed child columns.
pub struct ProjectExec<'a> {
    node: NodeId,
    cols: Vec<usize>,
    child: Box<dyn Executor + 'a>,
}

impl<'a> ProjectExec<'a> {
    pub fn new(node: NodeId, cols: Vec<usize>, child: Box<dyn Executor + 'a>) -> Self {
        ProjectExec { node, cols, child }
    }
}

impl Executor for ProjectExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.child.reopen(ctx, binding);
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        let t = self.child.next(ctx)?;
        let mut out = Tuple::new();
        for &c in &self.cols {
            out.push(t.get(c));
        }
        ctx.tick(self.node, 13);
        Some(out)
    }
}

/// Emit only the first `n` rows, then stop pulling from the child
/// (early termination: descendant counters never reach their totals).
pub struct TopExec<'a> {
    node: NodeId,
    n: u64,
    emitted: u64,
    child: Box<dyn Executor + 'a>,
}

impl<'a> TopExec<'a> {
    pub fn new(node: NodeId, n: u64, child: Box<dyn Executor + 'a>) -> Self {
        TopExec { node, n, emitted: 0, child }
    }
}

impl Executor for TopExec<'_> {
    fn open(&mut self, ctx: &mut ExecContext) {
        self.child.open(ctx);
        self.emitted = 0;
    }

    fn reopen(&mut self, ctx: &mut ExecContext, binding: i64) {
        self.child.reopen(ctx, binding);
        self.emitted = 0;
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Option<Tuple> {
        if self.emitted >= self.n {
            return None;
        }
        let t = self.child.next(ctx)?;
        self.emitted += 1;
        ctx.tick(self.node, 11);
        Some(t)
    }
}
