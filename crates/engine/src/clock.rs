//! Injectable wall-clock time for tapped executions.
//!
//! The engine's *virtual* clock ([`crate::context::ExecContext::now`])
//! measures simulated work and is fully deterministic. Converting progress
//! fractions into "how much longer?" answers additionally needs *wall*
//! time: the real-world instants at which observations became available.
//! Tap events ([`crate::trace::TraceEvent`]) therefore carry a wall stamp,
//! taken from a [`Clock`] at emission — at the producer, not at the
//! consumer, so queueing delay in a sharded monitor cannot skew speed
//! measurements.
//!
//! The clock is injectable precisely so that tests and experiments stay
//! deterministic: [`SystemClock`] (the [`crate::context::ExecConfig`]
//! default) reads the host's monotonic clock, while [`ManualClock`] is
//! driven entirely by the caller — set it, advance it, or let it
//! auto-step a fixed amount per reading so a deterministic engine run
//! produces a byte-identical stamp sequence every time.

use std::sync::Mutex;
use std::time::Instant;

/// A source of wall-clock seconds since the clock's own epoch.
///
/// Implementations must be monotone non-decreasing and cheap: the engine
/// reads the clock once per emitted tap event, inline with execution.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Seconds elapsed since this clock's epoch.
    fn now(&self) -> f64;
}

/// The production clock: the host's monotonic clock, with the clock's
/// construction instant as epoch.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> SystemClock {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A caller-driven clock for deterministic tests and experiments.
///
/// Time only moves when told to: [`ManualClock::set`] /
/// [`ManualClock::advance`] move it explicitly, and a clock built with
/// [`ManualClock::stepping`] additionally auto-advances by a fixed step on
/// every [`Clock::now`] reading — with a deterministic emission order
/// (which the engine guarantees, including under concurrent execution's
/// turn scheduler) the stamp sequence is then byte-identical across runs.
///
/// Share it as `Arc<ManualClock>`: the handle you keep drives the same
/// clock the engine stamps from.
#[derive(Debug, Default)]
pub struct ManualClock {
    /// (current time, auto-step per reading).
    state: Mutex<(f64, f64)>,
}

impl ManualClock {
    /// A clock frozen at `start` until explicitly moved.
    pub fn new(start: f64) -> ManualClock {
        ManualClock { state: Mutex::new((start, 0.0)) }
    }

    /// A clock that returns `start`, `start + step`, `start + 2·step`, …
    /// on successive readings.
    pub fn stepping(start: f64, step: f64) -> ManualClock {
        assert!(step >= 0.0 && step.is_finite(), "step must be finite and >= 0");
        ManualClock { state: Mutex::new((start, step)) }
    }

    /// Jump to `t` (clamped to never move backwards).
    pub fn set(&self, t: f64) {
        let mut st = self.state.lock().expect("clock poisoned");
        st.0 = st.0.max(t);
    }

    /// Move forward by `dt` seconds; returns the new time.
    pub fn advance(&self, dt: f64) -> f64 {
        assert!(dt >= 0.0, "clocks do not run backwards");
        let mut st = self.state.lock().expect("clock poisoned");
        st.0 += dt;
        st.0
    }

    /// Jump forward to instant `t` and return the resulting time — the
    /// open-loop pacing primitive: a simulation driver advances the shared
    /// clock to each scheduled instant before delivering the work due
    /// there, and out-of-order instants are simply absorbed (like
    /// [`ManualClock::set`], the clock never moves backwards, so the
    /// return value is `max(current, t)`).
    pub fn advance_to(&self, t: f64) -> f64 {
        let mut st = self.state.lock().expect("clock poisoned");
        st.0 = st.0.max(t);
        st.0
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        let mut st = self.state.lock().expect("clock poisoned");
        let t = st.0;
        st.0 += st.1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0 && b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new(5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.advance(2.5), 7.5);
        assert_eq!(c.now(), 7.5);
        c.set(3.0); // backwards: clamped
        assert_eq!(c.now(), 7.5);
        c.set(10.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    fn advance_to_is_a_clamped_forward_jump() {
        let c = ManualClock::new(2.0);
        assert_eq!(c.advance_to(5.0), 5.0);
        assert_eq!(c.now(), 5.0);
        // Behind the current time: absorbed, not a regression.
        assert_eq!(c.advance_to(1.0), 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.advance_to(5.0), 5.0);
    }

    #[test]
    fn stepping_clock_auto_advances_per_reading() {
        let c = ManualClock::stepping(1.0, 0.5);
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.now(), 1.5);
        c.advance(10.0);
        assert_eq!(c.now(), 12.0);
        assert_eq!(c.now(), 12.5);
    }
}
