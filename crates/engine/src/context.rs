//! Execution context: counters, virtual clock, snapshots.
//!
//! Every operator charges its work here. The context advances the virtual
//! clock (with seeded jitter and occasional stalls), maintains per-node
//! GetNext and byte counters, tracks per-pipeline activity windows, and
//! takes bounded-memory snapshots at (approximately) even time intervals —
//! when the snapshot buffer fills, every other snapshot is dropped and the
//! sampling interval doubles, so long queries keep an evenly spaced
//! history of at most `max_snapshots` observations.

use crate::clock::{Clock, SystemClock};
use crate::cost::{CostModel, SplitMix64};
use crate::exec::TurnScheduler;
use crate::trace::{DeltaEncoder, ObservationTrace, Snapshot, TraceEvent, TraceTap};
use std::sync::Arc;

/// Configuration for one execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Seed for the jitter/stall generator (execution is deterministic
    /// given the seed).
    pub seed: u64,
    /// Memory budget in bytes for hash tables and sorts before spilling.
    pub memory_budget_bytes: u64,
    /// Cost model for the virtual clock.
    pub cost: CostModel,
    /// Maximum number of retained snapshots (≥ 16).
    pub max_snapshots: usize,
    /// Initial snapshot interval in virtual time units.
    pub initial_snapshot_interval: f64,
    /// Wall-clock source stamping tapped events ([`TraceEvent`]'s `wall`
    /// fields). Defaults to [`SystemClock`]; inject a
    /// [`crate::clock::ManualClock`] for deterministic stamp sequences.
    /// Never read on untapped runs and never affects execution itself.
    pub wall_clock: Arc<dyn Clock>,
    /// Snapshot-delta tap compression: plans with at least this many nodes
    /// emit [`TraceEvent::Delta`] events (sparse changed-counter diffs)
    /// instead of full snapshots after the first, baseline
    /// [`TraceEvent::Snapshot`]. `0` disables deltas entirely. Narrow
    /// plans gain little from the sparse encoding, so the knob keeps them
    /// on the simple full-snapshot path. Like tapping itself, the setting
    /// never affects execution — only the wire encoding of the stream.
    pub delta_threshold: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            seed: 0x9e3779b9,
            memory_budget_bytes: 24 * 1024,
            cost: CostModel::default(),
            max_snapshots: 512,
            initial_snapshot_interval: 50.0,
            wall_clock: Arc::new(SystemClock::new()),
            delta_threshold: 0,
        }
    }
}

/// Mutable execution state shared by all operators of one query.
#[derive(Debug)]
pub struct ExecContext {
    cost: CostModel,
    memory_budget_bytes: u64,
    clock: f64,
    k: Vec<u64>,
    bytes_read: Vec<u64>,
    bytes_written: Vec<u64>,
    materialized: Vec<u64>,
    rng: SplitMix64,
    snapshots: Vec<Snapshot>,
    next_snap: f64,
    snap_interval: f64,
    max_snapshots: usize,
    pipeline_of: Vec<usize>,
    pipe_first: Vec<f64>,
    pipe_last: Vec<f64>,
    /// Concurrent-execution hook: (scheduler, my id, quantum).
    sched: Option<(Arc<TurnScheduler>, usize, u32)>,
    ticks_left: u32,
    /// Live observation stream: (sender, query id). Dropped on send error.
    tap: Option<(TraceTap, usize)>,
    /// Delta tap compression state: `Some` when the plan is at least
    /// [`ExecConfig::delta_threshold`] nodes wide (and the threshold is
    /// nonzero). Tracks the last-emitted counters so snapshots past the
    /// baseline go out as sparse [`TraceEvent::Delta`] diffs.
    delta_enc: Option<DeltaEncoder>,
    /// Snapshots emitted so far (tap event sequence number).
    snap_seq: u64,
    /// Wall-clock source for tap event stamps (read only when tapped).
    wall_clock: Arc<dyn Clock>,
}

impl ExecContext {
    /// Create a context for a plan with `n_nodes` nodes whose node→pipeline
    /// mapping is `pipeline_of` (see [`crate::pipeline::pipeline_of`]).
    pub fn new(
        cfg: &ExecConfig,
        n_nodes: usize,
        pipeline_of: Vec<usize>,
        n_pipelines: usize,
    ) -> Self {
        assert_eq!(pipeline_of.len(), n_nodes);
        let max_snapshots = cfg.max_snapshots.max(16);
        ExecContext {
            cost: cfg.cost.clone(),
            memory_budget_bytes: cfg.memory_budget_bytes,
            clock: 0.0,
            k: vec![0; n_nodes],
            bytes_read: vec![0; n_nodes],
            bytes_written: vec![0; n_nodes],
            materialized: vec![0; n_nodes],
            rng: SplitMix64::new(cfg.seed),
            snapshots: Vec::with_capacity(max_snapshots + 1),
            next_snap: cfg.initial_snapshot_interval,
            snap_interval: cfg.initial_snapshot_interval,
            max_snapshots,
            pipeline_of,
            pipe_first: vec![f64::INFINITY; n_pipelines],
            pipe_last: vec![f64::NEG_INFINITY; n_pipelines],
            sched: None,
            ticks_left: u32::MAX,
            tap: None,
            delta_enc: (cfg.delta_threshold > 0 && n_nodes >= cfg.delta_threshold)
                .then(DeltaEncoder::new),
            snap_seq: 0,
            wall_clock: Arc::clone(&cfg.wall_clock),
        }
    }

    /// Attach a concurrent-execution scheduler: after every `quantum`
    /// charged operations this context yields the virtual machine and
    /// fast-forwards over the time other queries consumed.
    pub fn attach_scheduler(&mut self, sched: Arc<TurnScheduler>, id: usize, quantum: u32) {
        self.sched = Some((sched, id, quantum.max(1)));
        self.ticks_left = quantum.max(1);
    }

    /// Attach a live observation stream: every retained snapshot (and the
    /// thinning/termination events that keep a mirror aligned with the
    /// final trace) is sent to `tap` as it happens, tagged with `query`.
    /// Tapping never alters execution — counters, clock and snapshot
    /// cadence are identical with and without a tap attached.
    pub fn attach_tap(&mut self, tap: TraceTap, query: usize) {
        self.tap = Some((tap, query));
    }

    fn emit(&mut self, ev: TraceEvent) {
        if let Some((tx, _)) = &self.tap {
            if tx.send(ev).is_err() {
                // Receiver gone: stop paying for event construction.
                self.tap = None;
            }
        }
    }

    fn emit_snapshot(&mut self) {
        if let Some((_, query)) = self.tap {
            let seq = self.snap_seq;
            self.snap_seq += 1;
            let wall = self.wall_clock.now();
            let windows = self.windows();
            let snap = self.snapshots.last().expect("snapshot just pushed");
            let ev = match self.delta_enc.as_mut().and_then(|enc| enc.encode(snap, &windows)) {
                Some((changes, window_updates)) => {
                    TraceEvent::Delta { query, seq, wall, time: snap.time, changes, window_updates }
                }
                // Either deltas are off for this plan or this is the
                // encoder's baseline emission: ship the full snapshot.
                None => TraceEvent::Snapshot { query, seq, wall, snapshot: snap.clone(), windows },
            };
            self.emit(ev);
        }
    }

    fn windows(&self) -> Box<[(f64, f64)]> {
        self.pipe_first.iter().zip(&self.pipe_last).map(|(&a, &b)| (a, b)).collect()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Fast-forward the clock to `t` (no-op when `t` is in the past).
    ///
    /// Used by the concurrent scheduler: while another query holds the
    /// (virtual) machine, this query's time passes without any of its
    /// counters advancing. Snapshot points crossed during the gap are
    /// taken immediately, so the trace records the stall.
    pub fn fast_forward(&mut self, t: f64) {
        if t <= self.clock {
            return;
        }
        self.clock = t;
        if self.clock >= self.next_snap {
            // One snapshot records the stall endpoint; snapshot points
            // that fell inside the gap are skipped (nothing changed).
            self.take_snapshot();
            if self.next_snap <= self.clock {
                let missed = ((self.clock - self.next_snap) / self.snap_interval).floor() + 1.0;
                self.next_snap += missed * self.snap_interval;
            }
        }
    }

    /// Memory budget for blocking operators.
    #[inline]
    pub fn memory_budget(&self) -> u64 {
        self.memory_budget_bytes
    }

    /// GetNext count so far at `node`.
    #[inline]
    pub fn k(&self, node: usize) -> u64 {
        self.k[node]
    }

    #[inline]
    fn advance(&mut self, node: usize, base: f64) {
        let mut cost = base;
        if self.cost.jitter > 0.0 {
            cost *= 1.0 + self.cost.jitter * (self.rng.next_f64() - 0.5) * 2.0;
            if self.rng.next_f64() < self.cost.stall_prob {
                cost += self.cost.stall_cost * (0.5 + self.rng.next_f64());
            }
        }
        self.clock += cost;
        let p = self.pipeline_of[node];
        if self.clock < self.pipe_first[p] {
            self.pipe_first[p] = self.clock;
        }
        if self.clock > self.pipe_last[p] {
            self.pipe_last[p] = self.clock;
        }
        if self.clock >= self.next_snap {
            self.take_snapshot();
        }
        if let Some((sched, id, quantum)) = &self.sched {
            self.ticks_left -= 1;
            if self.ticks_left == 0 {
                self.ticks_left = *quantum;
                let (sched, id) = (Arc::clone(sched), *id);
                let resume = sched.yield_turn(id, self.clock);
                self.fast_forward(resume);
            }
        }
    }

    /// One GetNext call at `node` with operator type code `tc`: increments
    /// K and charges the per-row CPU cost.
    #[inline]
    pub fn tick(&mut self, node: usize, tc: usize) {
        self.k[node] += 1;
        self.advance(node, self.cost.cpu_per_row[tc]);
    }

    /// Charge the per-*input*-row cost of a consuming operator (filter
    /// evaluation, hash probe, aggregation update) without counting a
    /// GetNext.
    #[inline]
    pub fn charge_input(&mut self, node: usize, tc: usize) {
        let c = self.cost.cpu_per_input[tc];
        if c > 0.0 {
            self.advance(node, c);
        }
    }

    /// Charge an arbitrary CPU cost.
    #[inline]
    pub fn charge_cpu(&mut self, node: usize, cost: f64) {
        self.advance(node, cost);
    }

    /// Logical sequential read of `bytes` at `node`.
    #[inline]
    pub fn read_bytes(&mut self, node: usize, bytes: u64) {
        self.bytes_read[node] += bytes;
        self.advance(node, bytes as f64 * self.cost.seq_read_per_byte);
    }

    /// Logical write of `bytes` at `node` (spills, result output).
    #[inline]
    pub fn write_bytes(&mut self, node: usize, bytes: u64) {
        self.bytes_written[node] += bytes;
        self.advance(node, bytes as f64 * self.cost.write_per_byte);
    }

    /// Report the materialized output size of a blocking operator (sort
    /// buffer length, hash-aggregate group count) when its build phase
    /// completes. This is the paper's §3.4 driver-node total: exactly
    /// known *before* the pipeline the operator drives starts, and the
    /// only driver denominator an online consumer may legitimately use.
    #[inline]
    pub fn report_materialized(&mut self, node: usize, rows: u64) {
        self.materialized[node] = rows;
    }

    /// Charge a seek: `local` seeks (close to the previous position in the
    /// index) are much cheaper than random I/Os.
    #[inline]
    pub fn charge_seek(&mut self, node: usize, local: bool) {
        let c = if local { self.cost.local_seek } else { self.cost.random_io };
        self.advance(node, c);
    }

    /// Locality window (rows) used by index seeks.
    #[inline]
    pub fn seek_locality_window(&self) -> i64 {
        self.cost.seek_locality_window
    }

    /// Tables at most this large (bytes) count as buffer-pool resident.
    #[inline]
    pub fn cached_table_bytes(&self) -> u64 {
        self.cost.cached_table_bytes
    }

    fn push_snapshot(&mut self) {
        self.snapshots.push(Snapshot {
            time: self.clock,
            k: self.k.clone().into_boxed_slice(),
            bytes_read: self.bytes_read.clone().into_boxed_slice(),
            bytes_written: self.bytes_written.clone().into_boxed_slice(),
            materialized: self.materialized.clone().into_boxed_slice(),
        });
        self.emit_snapshot();
    }

    fn take_snapshot(&mut self) {
        self.push_snapshot();
        self.next_snap += self.snap_interval;
        if self.snapshots.len() >= self.max_snapshots {
            // Thin: keep every other snapshot, double the interval.
            crate::trace::thin_half(&mut self.snapshots);
            self.snap_interval *= 2.0;
            self.next_snap =
                self.snapshots.last().map_or(self.snap_interval, |s| s.time + self.snap_interval);
            if let Some((_, query)) = self.tap {
                self.emit(TraceEvent::Thinned { query });
            }
        }
    }

    /// Finish execution and produce the observation trace.
    pub fn finish(mut self) -> ObservationTrace {
        // Always record the terminal state.
        self.push_snapshot();
        let windows: Vec<(f64, f64)> =
            self.pipe_first.iter().zip(&self.pipe_last).map(|(&a, &b)| (a, b)).collect();
        if let Some((_, query)) = self.tap {
            let wall = self.wall_clock.now();
            self.emit(TraceEvent::Finished {
                query,
                wall,
                windows: windows.clone().into_boxed_slice(),
                total_time: self.clock,
            });
        }
        ObservationTrace {
            snapshots: self.snapshots,
            final_k: self.k,
            final_bytes_read: self.bytes_read,
            final_bytes_written: self.bytes_written,
            final_materialized: self.materialized,
            total_time: self.clock,
            pipeline_windows: windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_one_node() -> ExecContext {
        let cfg = ExecConfig {
            cost: CostModel::deterministic(),
            initial_snapshot_interval: 10.0,
            max_snapshots: 16,
            ..ExecConfig::default()
        };
        ExecContext::new(&cfg, 1, vec![0], 1)
    }

    #[test]
    fn ticks_count_and_advance_clock() {
        let mut ctx = ctx_one_node();
        for _ in 0..5 {
            ctx.tick(0, 0); // TableScan rows at 0.6 each
        }
        assert_eq!(ctx.k(0), 5);
        assert!((ctx.now() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_taken_at_intervals() {
        let mut ctx = ctx_one_node();
        for _ in 0..100 {
            ctx.tick(0, 0); // 0.6 each => 60 time units total
        }
        let trace = ctx.finish();
        // Interval 10 => ~6 interior snapshots + final.
        assert!(trace.snapshots.len() >= 6);
        assert_eq!(trace.final_k[0], 100);
        // Times strictly increasing.
        for w in trace.snapshots.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn thinning_bounds_snapshot_count() {
        let cfg = ExecConfig {
            cost: CostModel::deterministic(),
            initial_snapshot_interval: 1.0,
            max_snapshots: 16,
            ..ExecConfig::default()
        };
        let mut ctx = ExecContext::new(&cfg, 1, vec![0], 1);
        for _ in 0..10_000 {
            ctx.tick(0, 0);
        }
        let trace = ctx.finish();
        assert!(trace.snapshots.len() <= 17, "got {}", trace.snapshots.len());
        assert!(trace.snapshots.len() >= 8);
    }

    #[test]
    fn pipeline_windows_track_activity() {
        let cfg = ExecConfig { cost: CostModel::deterministic(), ..ExecConfig::default() };
        let mut ctx = ExecContext::new(&cfg, 2, vec![0, 1], 2);
        ctx.tick(0, 0);
        ctx.tick(0, 0);
        let mid = ctx.now();
        ctx.tick(1, 0);
        let trace = ctx.finish();
        let (a0, b0) = trace.pipeline_windows[0];
        let (a1, b1) = trace.pipeline_windows[1];
        assert!(a0 > 0.0 && b0 <= mid + 1e-9);
        assert!(a1 > mid - 1e-9 && b1 >= a1);
    }

    #[test]
    fn byte_charges_accumulate() {
        let mut ctx = ctx_one_node();
        ctx.read_bytes(0, 100);
        ctx.write_bytes(0, 50);
        let trace = ctx.finish();
        assert_eq!(trace.final_bytes_read[0], 100);
        assert_eq!(trace.final_bytes_written[0], 50);
        assert!(trace.total_time > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ExecConfig::default();
        let run = |seed: u64| {
            let mut ctx = ExecContext::new(&ExecConfig { seed, ..cfg.clone() }, 1, vec![0], 1);
            for _ in 0..1000 {
                ctx.tick(0, 4);
            }
            ctx.finish().total_time
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
