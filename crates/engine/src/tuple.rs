//! Fixed-arity row values passed between operators.
//!
//! Rows are small (`i64` columns, arity ≤ [`MAX_COLS`]) and `Copy`, so the
//! Volcano `next()` path allocates nothing. The planner guarantees plans
//! project only the columns downstream operators need.

/// Maximum number of columns an intermediate tuple may carry.
pub const MAX_COLS: usize = 24;

/// A row of up to [`MAX_COLS`] `i64` values.
#[derive(Clone, Copy, Debug)]
pub struct Tuple {
    vals: [i64; MAX_COLS],
    len: u8,
}

impl Tuple {
    /// Empty tuple.
    #[inline]
    pub fn new() -> Self {
        Tuple { vals: [0; MAX_COLS], len: 0 }
    }

    /// Build from a slice.
    ///
    /// # Panics
    /// Panics if `vals.len() > MAX_COLS`.
    #[inline]
    pub fn from_slice(vals: &[i64]) -> Self {
        assert!(vals.len() <= MAX_COLS, "tuple arity {} exceeds MAX_COLS", vals.len());
        let mut t = Tuple::new();
        t.vals[..vals.len()].copy_from_slice(vals);
        t.len = vals.len() as u8;
        t
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.vals[..self.len as usize]
    }

    /// Value of column `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len as usize);
        self.vals[i]
    }

    /// Append a column.
    ///
    /// # Panics
    /// Panics if the tuple is full.
    #[inline]
    pub fn push(&mut self, v: i64) {
        assert!((self.len as usize) < MAX_COLS, "tuple overflow");
        self.vals[self.len as usize] = v;
        self.len += 1;
    }

    /// Concatenation `self ++ other` (join output).
    #[inline]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let total = self.len as usize + other.len as usize;
        assert!(total <= MAX_COLS, "join output arity {total} exceeds MAX_COLS");
        let mut t = *self;
        t.vals[self.len as usize..total].copy_from_slice(other.as_slice());
        t.len = total as u8;
        t
    }

    /// Logical width in bytes (8 per column).
    #[inline]
    pub fn width_bytes(&self) -> u64 {
        self.len as u64 * 8
    }
}

impl Default for Tuple {
    fn default() -> Self {
        Tuple::new()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Tuple {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read() {
        let t = Tuple::from_slice(&[1, -2, 3]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1), -2);
        assert_eq!(t.as_slice(), &[1, -2, 3]);
        assert_eq!(t.width_bytes(), 24);
    }

    #[test]
    fn concat_joins() {
        let a = Tuple::from_slice(&[1, 2]);
        let b = Tuple::from_slice(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn push_appends() {
        let mut t = Tuple::new();
        t.push(9);
        t.push(8);
        assert_eq!(t.as_slice(), &[9, 8]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_COLS")]
    fn from_slice_overflow_panics() {
        let vals = vec![0i64; MAX_COLS + 1];
        let _ = Tuple::from_slice(&vals);
    }

    #[test]
    fn equality_ignores_padding() {
        let mut a = Tuple::from_slice(&[1, 2, 3]);
        let b = Tuple::from_slice(&[1, 2]);
        assert_ne!(a, b);
        a = Tuple::from_slice(&[1, 2]);
        assert_eq!(a, b);
    }
}
