//! Physical plan representation.
//!
//! A [`PhysicalPlan`] is a tree of [`PlanNode`]s, each carrying an
//! [`OperatorKind`], optimizer cardinality estimates (`est_rows` — the
//! paper's E_i) and an estimated output row width in bytes (for the
//! bytes-processed model). Nodes are stored in a flat arena indexed by
//! [`NodeId`]; children precede parents is *not* guaranteed — use
//! [`PhysicalPlan::topo_order`] when order matters.
//!
//! Column addressing is positional: every operator's output is a tuple of
//! `i64` columns; predicates and join keys refer to indices into the
//! *child's* output (for joins, into the concatenation
//! `outer columns ++ inner columns`).

use std::fmt;

/// Index of a node within its plan's arena.
pub type NodeId = usize;

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A row predicate over a single input tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col <op> constant`.
    ColCmp {
        col: usize,
        op: CmpOp,
        val: i64,
    },
    /// `lo <= col <= hi`.
    ColRange {
        col: usize,
        lo: i64,
        hi: i64,
    },
    /// `col <op> <current nested-loop binding>` — used on the inner side of
    /// a naive (rescan) nested-loop join.
    BoundCmp {
        col: usize,
        op: CmpOp,
    },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a tuple, with `binding` supplying the correlated
    /// nested-loop parameter (if any).
    pub fn eval(&self, row: &[i64], binding: i64) -> bool {
        match self {
            Predicate::ColCmp { col, op, val } => op.eval(row[*col], *val),
            Predicate::ColRange { col, lo, hi } => {
                let v = row[*col];
                *lo <= v && v <= *hi
            }
            Predicate::BoundCmp { col, op } => op.eval(row[*col], binding),
            Predicate::And(a, b) => a.eval(row, binding) && b.eval(row, binding),
            Predicate::Or(a, b) => a.eval(row, binding) || b.eval(row, binding),
        }
    }

    /// Does this predicate (transitively) reference the nested-loop binding?
    pub fn uses_binding(&self) -> bool {
        match self {
            Predicate::BoundCmp { .. } => true,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.uses_binding() || b.uses_binding(),
            _ => false,
        }
    }

    /// Largest column index referenced, or `None` if none.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Predicate::ColCmp { col, .. }
            | Predicate::ColRange { col, .. }
            | Predicate::BoundCmp { col, .. } => Some(*col),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.max_col().max(b.max_col()),
        }
    }
}

/// How an index seek obtains its key.
#[derive(Debug, Clone, PartialEq)]
pub enum SeekKind {
    /// Key is the correlated nested-loop binding (classic inner side of a
    /// nested iteration).
    BoundParam,
    /// Static key range `lo..=hi` (an index-range access path for a
    /// filter predicate).
    StaticRange { lo: i64, hi: i64 },
}

/// Aggregate function over one input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum { col: usize },
    Min { col: usize },
    Max { col: usize },
}

/// Physical operators supported by the execution simulator.
///
/// The set mirrors the operators the paper's Table 1 tracks (nested-loop
/// join, merge join, hash join/aggregate, index seek, batch sort, stream
/// aggregate) plus the scan/filter/sort/top plumbing they require.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorKind {
    /// Full sequential scan of `table`, projecting `cols`.
    TableScan { table: String, cols: Vec<usize> },
    /// Scan in `key_col` order through an index (output sorted by the
    /// projected position of `key_col`).
    IndexScan { table: String, key_col: usize, cols: Vec<usize> },
    /// Index lookup; emits rows whose `key_col` matches the seek key(s).
    IndexSeek { table: String, key_col: usize, cols: Vec<usize>, seek: SeekKind },
    /// Row filter.
    Filter { pred: Predicate },
    /// Hash join; children `[probe, build]`, equi-join on
    /// `probe[probe_key] == build[build_key]`. Output = probe ++ build.
    HashJoin { probe_key: usize, build_key: usize },
    /// Merge join; children `[left, right]`, both sorted on their keys.
    /// Output = left ++ right.
    MergeJoin { left_key: usize, right_key: usize },
    /// Nested-loop join; children `[outer, inner]`. The inner subtree is
    /// re-opened for every outer row with binding `outer[outer_key]`.
    /// Output = outer ++ inner.
    NestedLoopJoin { outer_key: usize },
    /// Hash aggregation (blocking). Output = group cols ++ one col per agg.
    HashAggregate { group_cols: Vec<usize>, aggs: Vec<AggFunc> },
    /// Streaming aggregation over input sorted by `group_cols`.
    StreamAggregate { group_cols: Vec<usize>, aggs: Vec<AggFunc> },
    /// Full blocking sort by `key_cols` (ascending, lexicographic).
    Sort { key_cols: Vec<usize> },
    /// Partial batch sort: consume `batch` rows, sort by `key_col`, emit,
    /// repeat. Used to localize nested-iteration references (\[9\], §5.1 of
    /// the paper).
    BatchSort { key_col: usize, batch: usize },
    /// Emit only the first `n` rows.
    Top { n: u64 },
    /// Pass-through adding `added_cols` computed columns (cost stand-in for
    /// scalar expressions; computed values are simple derivations).
    ComputeScalar { added_cols: usize },
    /// Projection: keep only the listed child columns (dead-column
    /// elimination between joins).
    Project { cols: Vec<usize> },
}

impl OperatorKind {
    /// Short stable name used in features and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::TableScan { .. } => "TableScan",
            OperatorKind::IndexScan { .. } => "IndexScan",
            OperatorKind::IndexSeek { .. } => "IndexSeek",
            OperatorKind::Filter { .. } => "Filter",
            OperatorKind::HashJoin { .. } => "HashJoin",
            OperatorKind::MergeJoin { .. } => "MergeJoin",
            OperatorKind::NestedLoopJoin { .. } => "NestedLoopJoin",
            OperatorKind::HashAggregate { .. } => "HashAggregate",
            OperatorKind::StreamAggregate { .. } => "StreamAggregate",
            OperatorKind::Sort { .. } => "Sort",
            OperatorKind::BatchSort { .. } => "BatchSort",
            OperatorKind::Top { .. } => "Top",
            OperatorKind::ComputeScalar { .. } => "ComputeScalar",
            OperatorKind::Project { .. } => "Project",
        }
    }

    /// Dense operator-type code used for feature vectors; see
    /// [`OP_TYPE_COUNT`].
    pub fn type_code(&self) -> usize {
        match self {
            OperatorKind::TableScan { .. } => 0,
            OperatorKind::IndexScan { .. } => 1,
            OperatorKind::IndexSeek { .. } => 2,
            OperatorKind::Filter { .. } => 3,
            OperatorKind::HashJoin { .. } => 4,
            OperatorKind::MergeJoin { .. } => 5,
            OperatorKind::NestedLoopJoin { .. } => 6,
            OperatorKind::HashAggregate { .. } => 7,
            OperatorKind::StreamAggregate { .. } => 8,
            OperatorKind::Sort { .. } => 9,
            OperatorKind::BatchSort { .. } => 10,
            OperatorKind::Top { .. } => 11,
            OperatorKind::ComputeScalar { .. } => 12,
            OperatorKind::Project { .. } => 13,
        }
    }

    /// Number of children this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            OperatorKind::TableScan { .. }
            | OperatorKind::IndexScan { .. }
            | OperatorKind::IndexSeek { .. } => 0,
            OperatorKind::HashJoin { .. }
            | OperatorKind::MergeJoin { .. }
            | OperatorKind::NestedLoopJoin { .. } => 2,
            _ => 1,
        }
    }
}

/// Number of distinct operator type codes.
pub const OP_TYPE_COUNT: usize = 14;

/// Stable names aligned with [`OperatorKind::type_code`].
pub const OP_TYPE_NAMES: [&str; OP_TYPE_COUNT] = [
    "TableScan",
    "IndexScan",
    "IndexSeek",
    "Filter",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "HashAggregate",
    "StreamAggregate",
    "Sort",
    "BatchSort",
    "Top",
    "ComputeScalar",
    "Project",
];

/// One node of a physical plan.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub op: OperatorKind,
    pub children: Vec<NodeId>,
    /// Optimizer estimate of total GetNext calls at this node (the paper's
    /// E_i). For base-table scans this is exact; elsewhere it inherits the
    /// cardinality model's errors.
    pub est_rows: f64,
    /// Estimated average output row width in bytes.
    pub est_row_bytes: f64,
    /// Number of output columns.
    pub out_cols: usize,
}

/// A physical plan: node arena plus root.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub nodes: Vec<PlanNode>,
    pub root: NodeId,
}

/// Registration surfaces take `impl Into<Arc<PhysicalPlan>>`: a borrowed
/// plan clones into a fresh `Arc` (the common "register this plan I still
/// own" path), while an owned `Arc` moves in without copying (the sharded
/// service registering one plan on many shards).
impl From<&PhysicalPlan> for std::sync::Arc<PhysicalPlan> {
    fn from(plan: &PhysicalPlan) -> Self {
        std::sync::Arc::new(plan.clone())
    }
}

impl PhysicalPlan {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// All node ids in post-order (children before parents), starting from
    /// the root. Unreachable nodes are excluded.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut visited = vec![false; self.nodes.len()];
        // Iterative post-order DFS.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some(&mut (id, ref mut child_idx)) = stack.last_mut() {
            if visited[id] {
                stack.pop();
                continue;
            }
            let children = &self.nodes[id].children;
            if *child_idx < children.len() {
                let c = children[*child_idx];
                *child_idx += 1;
                stack.push((c, 0));
            } else {
                visited[id] = true;
                order.push(id);
                stack.pop();
            }
        }
        order
    }

    /// Parent of each node (`None` for the root / unreachable nodes).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                parents[c] = Some(id);
            }
        }
        parents
    }

    /// All descendants of `id` (excluding `id` itself).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.nodes[id].children.clone();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(&self.nodes[n].children);
        }
        out
    }

    /// Sum of `est_rows` over all nodes (the TGN denominator Σ E_i).
    pub fn total_est_rows(&self) -> f64 {
        self.nodes.iter().map(|n| n.est_rows).sum()
    }

    /// Validate structural invariants (child arity, column references,
    /// acyclicity via topo reachability). Returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty plan".into());
        }
        if self.root >= self.nodes.len() {
            return Err(format!("root {} out of bounds", self.root));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            if node.children.len() != node.op.arity() {
                return Err(format!(
                    "node {id} ({}) expects {} children, has {}",
                    node.op.name(),
                    node.op.arity(),
                    node.children.len()
                ));
            }
            for &c in &node.children {
                if c >= self.nodes.len() {
                    return Err(format!("node {id} child {c} out of bounds"));
                }
            }
            if !node.est_rows.is_finite() || node.est_rows < 0.0 {
                return Err(format!("node {id} has invalid est_rows {}", node.est_rows));
            }
            let child_cols = |i: usize| -> usize { self.nodes[node.children[i]].out_cols };
            match &node.op {
                OperatorKind::Filter { pred } => {
                    if let Some(mc) = pred.max_col() {
                        if mc >= child_cols(0) {
                            return Err(format!("node {id} filter col {mc} out of range"));
                        }
                    }
                    if node.out_cols != child_cols(0) {
                        return Err(format!("node {id} filter must preserve columns"));
                    }
                }
                OperatorKind::HashJoin { probe_key, build_key } => {
                    if *probe_key >= child_cols(0) || *build_key >= child_cols(1) {
                        return Err(format!("node {id} hash-join key out of range"));
                    }
                    if node.out_cols != child_cols(0) + child_cols(1) {
                        return Err(format!("node {id} hash-join out_cols mismatch"));
                    }
                }
                OperatorKind::MergeJoin { left_key, right_key } => {
                    if *left_key >= child_cols(0) || *right_key >= child_cols(1) {
                        return Err(format!("node {id} merge-join key out of range"));
                    }
                    if node.out_cols != child_cols(0) + child_cols(1) {
                        return Err(format!("node {id} merge-join out_cols mismatch"));
                    }
                }
                OperatorKind::NestedLoopJoin { outer_key } => {
                    if *outer_key >= child_cols(0) {
                        return Err(format!("node {id} nlj outer key out of range"));
                    }
                    if node.out_cols != child_cols(0) + child_cols(1) {
                        return Err(format!("node {id} nlj out_cols mismatch"));
                    }
                }
                OperatorKind::Project { cols } => {
                    for &c in cols {
                        if c >= child_cols(0) {
                            return Err(format!("node {id} project col {c} out of range"));
                        }
                    }
                    if node.out_cols != cols.len() {
                        return Err(format!("node {id} project out_cols mismatch"));
                    }
                }
                OperatorKind::Sort { key_cols } => {
                    for &k in key_cols {
                        if k >= child_cols(0) {
                            return Err(format!("node {id} sort key {k} out of range"));
                        }
                    }
                }
                OperatorKind::BatchSort { key_col, batch } => {
                    if *key_col >= child_cols(0) {
                        return Err(format!("node {id} batch-sort key out of range"));
                    }
                    if *batch == 0 {
                        return Err(format!("node {id} batch-sort batch must be > 0"));
                    }
                }
                OperatorKind::HashAggregate { group_cols, aggs }
                | OperatorKind::StreamAggregate { group_cols, aggs } => {
                    for &g in group_cols {
                        if g >= child_cols(0) {
                            return Err(format!("node {id} group col {g} out of range"));
                        }
                    }
                    for a in aggs {
                        let c = match a {
                            AggFunc::Count => continue,
                            AggFunc::Sum { col } | AggFunc::Min { col } | AggFunc::Max { col } => {
                                *col
                            }
                        };
                        if c >= child_cols(0) {
                            return Err(format!("node {id} agg col {c} out of range"));
                        }
                    }
                    if node.out_cols != group_cols.len() + aggs.len() {
                        return Err(format!("node {id} aggregate out_cols mismatch"));
                    }
                }
                _ => {}
            }
        }
        // Reachability / acyclicity: topo_order must terminate and visit root.
        let order = self.topo_order();
        if !order.contains(&self.root) {
            return Err("root unreachable in topological order".into());
        }
        Ok(())
    }

    /// Render an indented tree (for debugging and examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        use fmt::Write;
        let node = &self.nodes[id];
        let _ = writeln!(
            out,
            "{:indent$}{} [id={id} est_rows={:.0}]",
            "",
            node.op.name(),
            node.est_rows,
            indent = depth * 2
        );
        for &c in &node.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn scan_filter_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![
                PlanNode {
                    op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                    children: vec![],
                    est_rows: 100.0,
                    est_row_bytes: 16.0,
                    out_cols: 2,
                },
                PlanNode {
                    op: OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 1, op: CmpOp::Gt, val: 5 },
                    },
                    children: vec![0],
                    est_rows: 50.0,
                    est_row_bytes: 16.0,
                    out_cols: 2,
                },
            ],
            root: 1,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(scan_filter_plan().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_filter_col() {
        let mut p = scan_filter_plan();
        p.nodes[1].op =
            OperatorKind::Filter { pred: Predicate::ColCmp { col: 7, op: CmpOp::Eq, val: 0 } };
        assert!(p.validate().is_err());
    }

    #[test]
    fn topo_order_children_first() {
        let p = scan_filter_plan();
        assert_eq!(p.topo_order(), vec![0, 1]);
    }

    #[test]
    fn predicate_eval() {
        let pred = Predicate::And(
            Box::new(Predicate::ColRange { col: 0, lo: 1, hi: 10 }),
            Box::new(Predicate::Or(
                Box::new(Predicate::ColCmp { col: 1, op: CmpOp::Eq, val: 3 }),
                Box::new(Predicate::BoundCmp { col: 1, op: CmpOp::Eq }),
            )),
        );
        assert!(pred.eval(&[5, 3], 0));
        assert!(pred.eval(&[5, 9], 9));
        assert!(!pred.eval(&[5, 9], 3));
        assert!(!pred.eval(&[11, 3], 0));
        assert!(pred.uses_binding());
        assert_eq!(pred.max_col(), Some(1));
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
    }

    #[test]
    fn descendants_and_parents() {
        let p = scan_filter_plan();
        assert_eq!(p.descendants(1), vec![0]);
        let parents = p.parents();
        assert_eq!(parents[0], Some(1));
        assert_eq!(parents[1], None);
    }
}
