//! Virtual-clock cost model.
//!
//! The simulator charges every GetNext call (and auxiliary work such as
//! hash-table builds, sort passes and spill I/O) against a deterministic
//! virtual clock. The constants below are abstract time units chosen so
//! that:
//!
//! * total time correlates strongly — but not perfectly — with the total
//!   number of GetNext calls, matching the paper's Section 6.7 finding
//!   that the idealized GetNext model has a small (~0.06 L1) residual
//!   error against wall-clock progress;
//! * random I/O (index seeks with poor locality) and spills are much more
//!   expensive than streaming work, so nested iterations and
//!   memory-pressured hash joins produce realistic per-tuple-work variance.
//!
//! A seeded [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator
//! adds multiplicative jitter and occasional stalls (page faults, buffer
//! pool misses) so that time is not a pure linear function of counters.

/// Minimal, fast, seeded PRNG for per-tick jitter.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-operator CPU costs and I/O rates (abstract time units).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU cost of producing one row, indexed by `OperatorKind::type_code()`.
    pub cpu_per_row: [f64; crate::plan::OP_TYPE_COUNT],
    /// Extra CPU per *input* row for consuming operators (filter eval, hash
    /// probe, aggregation update), indexed by type code.
    pub cpu_per_input: [f64; crate::plan::OP_TYPE_COUNT],
    /// Cost per byte of sequential read.
    pub seq_read_per_byte: f64,
    /// Cost per byte written (spills, result output).
    pub write_per_byte: f64,
    /// Cost of a random I/O (index seek to a non-local key).
    pub random_io: f64,
    /// Cost of a "local" reseek (key close to the previous one — the case
    /// batch sorts create on purpose).
    pub local_seek: f64,
    /// Key distance (in rows) below which a reseek counts as local.
    pub seek_locality_window: i64,
    /// Tables whose total size is at most this many bytes are assumed
    /// buffer-pool resident: every seek into them is local.
    pub cached_table_bytes: u64,
    /// Multiplicative jitter amplitude (0 = deterministic time).
    pub jitter: f64,
    /// Probability of a stall per tick and its cost.
    pub stall_prob: f64,
    pub stall_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        use crate::plan::OP_TYPE_COUNT;
        // Indices follow OperatorKind::type_code():
        // 0 TableScan, 1 IndexScan, 2 IndexSeek, 3 Filter, 4 HashJoin,
        // 5 MergeJoin, 6 NestedLoopJoin, 7 HashAggregate, 8 StreamAggregate,
        // 9 Sort, 10 BatchSort, 11 Top, 12 ComputeScalar, 13 Project.
        let mut cpu_per_row = [0.5f64; OP_TYPE_COUNT];
        cpu_per_row[0] = 0.6;
        cpu_per_row[1] = 0.8;
        cpu_per_row[2] = 1.0;
        cpu_per_row[3] = 0.2;
        cpu_per_row[4] = 1.2;
        cpu_per_row[5] = 0.9;
        cpu_per_row[6] = 0.4;
        cpu_per_row[7] = 0.8;
        cpu_per_row[8] = 0.5;
        cpu_per_row[9] = 0.3;
        cpu_per_row[10] = 0.35;
        cpu_per_row[11] = 0.2;
        cpu_per_row[12] = 0.3;
        cpu_per_row[13] = 0.15;

        let mut cpu_per_input = [0.0f64; OP_TYPE_COUNT];
        cpu_per_input[3] = 0.25; // filter evaluation
        cpu_per_input[4] = 0.7; // hash probe / build insert
        cpu_per_input[5] = 0.3; // merge advance
        cpu_per_input[7] = 1.3; // hash aggregate update
        cpu_per_input[8] = 0.4; // stream aggregate update
        cpu_per_input[9] = 0.9; // sort insert (log factor charged separately)
        cpu_per_input[10] = 0.5; // batch sort insert

        CostModel {
            cpu_per_row,
            cpu_per_input,
            seq_read_per_byte: 0.004,
            write_per_byte: 0.006,
            random_io: 60.0,
            local_seek: 2.0,
            seek_locality_window: 64,
            cached_table_bytes: 96 * 1024,
            jitter: 0.15,
            stall_prob: 0.0015,
            stall_cost: 250.0,
        }
    }
}

impl CostModel {
    /// A fully deterministic variant (no jitter, no stalls) for tests.
    pub fn deterministic() -> Self {
        CostModel { jitter: 0.0, stall_prob: 0.0, ..CostModel::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(7);
        let mean: f64 = (0..10_000).map(|_| c.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mut d = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = d.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn default_model_sane() {
        let m = CostModel::default();
        assert!(m.random_io > m.local_seek);
        assert!(m.cpu_per_row.iter().all(|&c| c > 0.0));
        let d = CostModel::deterministic();
        assert_eq!(d.jitter, 0.0);
        assert_eq!(d.stall_prob, 0.0);
    }
}
