//! End-to-end executor tests over small hand-built tables and plans.

use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
use prosel_engine::plan::{
    AggFunc, CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate, SeekKind,
};
use prosel_engine::{run_plan, Catalog, CostModel, ExecConfig};

/// A tiny database: t(a pk, b), u(k fk->t, v).
fn tiny_db() -> Database {
    let mut db = Database::new("tiny");
    let t_meta = TableMeta::new(
        "t",
        64,
        vec![
            ColumnMeta::new("a", ColumnRole::PrimaryKey),
            ColumnMeta::new("b", ColumnRole::Value { min: 0, max: 100 }),
        ],
    );
    db.add(Table::new(
        t_meta,
        vec![
            Column { name: "a".into(), data: (1..=10).collect() },
            Column { name: "b".into(), data: (1..=10).map(|x| x * 10).collect() },
        ],
    ));
    let u_meta = TableMeta::new(
        "u",
        48,
        vec![
            ColumnMeta::new("k", ColumnRole::ForeignKey { table: "t".into() }),
            ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 100 }),
        ],
    );
    // Key 3 appears 5 times (skew), keys 1,2 once, others absent.
    db.add(Table::new(
        u_meta,
        vec![
            Column { name: "k".into(), data: vec![3, 3, 3, 3, 3, 1, 2] },
            Column { name: "v".into(), data: vec![7, 7, 7, 7, 7, 1, 2] },
        ],
    ));
    db
}

fn node(op: OperatorKind, children: Vec<usize>, est: f64, out_cols: usize) -> PlanNode {
    PlanNode { op, children, est_rows: est, est_row_bytes: 8.0 * out_cols as f64, out_cols }
}

fn det_cfg() -> ExecConfig {
    ExecConfig { cost: CostModel::deterministic(), ..ExecConfig::default() }
}

fn full_design(db: &Database) -> PhysicalDesign {
    let mut d = PhysicalDesign::derive(db, TuningLevel::FullyTuned);
    // Ensure an index on u.k exists for seek tests.
    if !d.has_index("u", "k") {
        d.indexes.push(prosel_datagen::IndexDef::new("u", "k"));
    }
    d
}

#[test]
fn table_scan_counts_rows() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![node(
            OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
            vec![],
            10.0,
            2,
        )],
        root: 0,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 10);
    assert_eq!(run.trace.final_k[0], 10);
    assert_eq!(run.trace.final_bytes_read[0], 10 * 64);
    assert!(run.trace.total_time > 0.0);
}

#[test]
fn filter_selectivity() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(
                OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Gt, val: 50 } },
                vec![0],
                5.0,
                2,
            ),
        ],
        root: 1,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    // b in {60..100} => 5 rows pass.
    assert_eq!(run.result_rows, 5);
    assert_eq!(run.trace.final_k[1], 5);
    assert_eq!(run.trace.final_k[0], 10);
}

#[test]
fn hash_join_matches_and_pipelines() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    // probe = scan u (7 rows), build = scan t (10 rows); join on u.k == t.a.
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "u".into(), cols: vec![0, 1] }, vec![], 7.0, 2),
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![0, 1], 7.0, 4),
        ],
        root: 2,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    // Every u row joins exactly one t row.
    assert_eq!(run.result_rows, 7);
    assert_eq!(run.trace.final_k[2], 7);
    // Two pipelines: build side first, probe side second.
    assert_eq!(run.pipelines.len(), 2);
    let (b_start, b_end) = run.trace.pipeline_windows[run.pipelines[0].id];
    let (p_start, _p_end) = run.trace.pipeline_windows[run.pipelines[1].id];
    assert!(b_start < p_start, "build pipeline must start first");
    assert!(b_end <= run.trace.total_time);
}

#[test]
fn hash_join_spills_under_tiny_budget() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "u".into(), cols: vec![0, 1] }, vec![], 7.0, 2),
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![0, 1], 7.0, 4),
        ],
        root: 2,
    };
    let cfg = ExecConfig {
        memory_budget_bytes: 32, // force spilling almost everything
        cost: CostModel::deterministic(),
        ..ExecConfig::default()
    };
    let run = run_plan(&cat, &plan, &cfg);
    // Same results despite spilling…
    assert_eq!(run.result_rows, 7);
    // …but spill I/O shows up at the join node.
    assert!(run.trace.final_bytes_written[2] > 0, "expected spill writes");
    assert!(run.trace.final_bytes_read[2] > 0, "expected spill re-reads");
}

#[test]
fn nested_loop_with_index_seek() {
    let db = tiny_db();
    let design = full_design(&db);
    let cat = Catalog::new(&db, &design);
    // outer = scan t, inner = seek u on k == binding.
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(
                OperatorKind::IndexSeek {
                    table: "u".into(),
                    key_col: 0,
                    cols: vec![0, 1],
                    seek: SeekKind::BoundParam,
                },
                vec![],
                7.0,
                2,
            ),
            node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![0, 1], 7.0, 4),
        ],
        root: 2,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 7);
    // Seek emitted 7 rows total across rebinds.
    assert_eq!(run.trace.final_k[1], 7);
    // Single pipeline; seek is nl-inner, not a driver.
    assert_eq!(run.pipelines.len(), 1);
    assert_eq!(run.pipelines[0].driver_nodes, vec![0]);
    assert_eq!(run.pipelines[0].index_seek_nodes, vec![1]);
}

#[test]
fn naive_nested_loop_rescans() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    // Inner = Filter(k == binding) over full rescan of u.
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0] }, vec![], 10.0, 1),
            node(OperatorKind::TableScan { table: "u".into(), cols: vec![0, 1] }, vec![], 70.0, 2),
            node(
                OperatorKind::Filter { pred: Predicate::BoundCmp { col: 0, op: CmpOp::Eq } },
                vec![1],
                7.0,
                2,
            ),
            node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![0, 2], 7.0, 3),
        ],
        root: 3,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 7);
    // The inner scan was re-scanned per outer row: 10 * 7 rows.
    assert_eq!(run.trace.final_k[1], 70);
}

#[test]
fn merge_join_on_sorted_inputs() {
    let db = tiny_db();
    let design = full_design(&db);
    let cat = Catalog::new(&db, &design);
    // IndexScan t ordered by a; IndexScan u ordered by k. Merge on a == k.
    let t_plan = PhysicalPlan {
        nodes: vec![
            node(
                OperatorKind::IndexScan { table: "t".into(), key_col: 0, cols: vec![0, 1] },
                vec![],
                10.0,
                2,
            ),
            node(
                OperatorKind::IndexScan { table: "u".into(), key_col: 0, cols: vec![0, 1] },
                vec![],
                7.0,
                2,
            ),
            node(OperatorKind::MergeJoin { left_key: 0, right_key: 0 }, vec![0, 1], 7.0, 4),
        ],
        root: 2,
    };
    let run = run_plan(&cat, &t_plan, &det_cfg());
    assert_eq!(run.result_rows, 7);
    // Merge join keeps everything in one pipeline with two drivers.
    assert_eq!(run.pipelines.len(), 1);
    assert_eq!(run.pipelines[0].driver_nodes, vec![0, 1]);
}

#[test]
fn sort_breaks_pipeline_and_orders() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "u".into(), cols: vec![0, 1] }, vec![], 7.0, 2),
            node(OperatorKind::Sort { key_cols: vec![0] }, vec![0], 7.0, 2),
            node(OperatorKind::Top { n: 3 }, vec![1], 3.0, 2),
        ],
        root: 2,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 3);
    assert_eq!(run.pipelines.len(), 2);
    // Sort is the driver node of the output pipeline.
    assert!(run.pipelines[1].driver_nodes.contains(&1));
    // Scan ran to completion even though Top stopped early (sort is blocking).
    assert_eq!(run.trace.final_k[0], 7);
    // Sort only emitted 3 rows.
    assert_eq!(run.trace.final_k[1], 3);
}

#[test]
fn batch_sort_preserves_rows_and_pipeline() {
    let db = tiny_db();
    let design = full_design(&db);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(OperatorKind::BatchSort { key_col: 0, batch: 4 }, vec![0], 10.0, 2),
            node(
                OperatorKind::IndexSeek {
                    table: "u".into(),
                    key_col: 0,
                    cols: vec![1],
                    seek: SeekKind::BoundParam,
                },
                vec![],
                7.0,
                1,
            ),
            node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![1, 2], 7.0, 3),
        ],
        root: 3,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 7);
    assert_eq!(run.pipelines.len(), 1);
    assert_eq!(run.pipelines[0].batch_sort_nodes, vec![1]);
    // Batch sort forwarded all 10 outer rows.
    assert_eq!(run.trace.final_k[1], 10);
}

#[test]
fn hash_aggregate_groups() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "u".into(), cols: vec![0, 1] }, vec![], 7.0, 2),
            node(
                OperatorKind::HashAggregate {
                    group_cols: vec![0],
                    aggs: vec![AggFunc::Count, AggFunc::Sum { col: 1 }],
                },
                vec![0],
                3.0,
                3,
            ),
        ],
        root: 1,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    // Groups: k=1, k=2, k=3.
    assert_eq!(run.result_rows, 3);
    assert_eq!(run.trace.final_k[1], 3);
    assert_eq!(run.pipelines.len(), 2);
}

#[test]
fn stream_aggregate_equals_hash_aggregate_on_sorted_input() {
    let db = tiny_db();
    let design = full_design(&db);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(
                OperatorKind::IndexScan { table: "u".into(), key_col: 0, cols: vec![0, 1] },
                vec![],
                7.0,
                2,
            ),
            node(
                OperatorKind::StreamAggregate {
                    group_cols: vec![0],
                    aggs: vec![AggFunc::Count, AggFunc::Max { col: 1 }],
                },
                vec![0],
                3.0,
                3,
            ),
        ],
        root: 1,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 3);
    // Stream agg keeps one pipeline (it is not blocking).
    assert_eq!(run.pipelines.len(), 1);
}

#[test]
fn top_terminates_scan_early() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(OperatorKind::Top { n: 4 }, vec![0], 4.0, 2),
        ],
        root: 1,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 4);
    // The scan never finished: true N < table size.
    assert_eq!(run.trace.final_k[0], 4);
}

#[test]
fn compute_scalar_adds_columns() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0] }, vec![], 10.0, 1),
            node(OperatorKind::ComputeScalar { added_cols: 2 }, vec![0], 10.0, 3),
        ],
        root: 1,
    };
    let run = run_plan(&cat, &plan, &det_cfg());
    assert_eq!(run.result_rows, 10);
    assert_eq!(run.trace.final_k[1], 10);
}

#[test]
fn execution_is_deterministic() {
    let db = tiny_db();
    let design = full_design(&db);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 10.0, 2),
            node(
                OperatorKind::IndexSeek {
                    table: "u".into(),
                    key_col: 0,
                    cols: vec![1],
                    seek: SeekKind::BoundParam,
                },
                vec![],
                7.0,
                1,
            ),
            node(OperatorKind::NestedLoopJoin { outer_key: 0 }, vec![0, 1], 7.0, 3),
        ],
        root: 2,
    };
    let cfg = ExecConfig { seed: 77, ..ExecConfig::default() };
    let a = run_plan(&cat, &plan, &cfg);
    let b = run_plan(&cat, &plan, &cfg);
    assert_eq!(a.trace.total_time, b.trace.total_time);
    assert_eq!(a.trace.final_k, b.trace.final_k);
    let c = run_plan(&cat, &plan, &ExecConfig { seed: 78, ..ExecConfig::default() });
    assert_ne!(a.trace.total_time, c.trace.total_time);
}

#[test]
fn snapshots_are_monotone_in_k() {
    let db = tiny_db();
    let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
    let cat = Catalog::new(&db, &design);
    let plan = PhysicalPlan {
        nodes: vec![node(
            OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
            vec![],
            10.0,
            1,
        )],
        root: 0,
    };
    let cfg = ExecConfig {
        cost: CostModel::deterministic(),
        initial_snapshot_interval: 1.0,
        ..ExecConfig::default()
    };
    let run = run_plan(&cat, &plan, &cfg);
    for w in run.trace.snapshots.windows(2) {
        assert!(w[0].k[0] <= w[1].k[0]);
        assert!(w[0].bytes_read[0] <= w[1].bytes_read[0]);
    }
    assert_eq!(run.trace.snapshots.last().unwrap().k[0], 10);
}
