//! Property-based execution tests: randomly parameterized plans over a
//! fixed table must uphold the engine's counter and trace invariants.

use proptest::prelude::*;
use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
use prosel_engine::plan::{AggFunc, CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::{run_plan, Catalog, CostModel, ExecConfig};

fn db(rows: usize) -> Database {
    let mut db = Database::new("prop");
    let meta = TableMeta::new(
        "t",
        64,
        vec![
            ColumnMeta::new("id", ColumnRole::PrimaryKey),
            ColumnMeta::new("g", ColumnRole::Category { cardinality: 7 }),
            ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 999 }),
        ],
    );
    db.add(Table::new(
        meta,
        vec![
            Column { name: "id".into(), data: (1..=rows as i64).collect() },
            Column { name: "g".into(), data: (0..rows as i64).map(|i| i % 7).collect() },
            Column { name: "v".into(), data: (0..rows as i64).map(|i| (i * 37) % 1000).collect() },
        ],
    ));
    db
}

fn node(op: OperatorKind, children: Vec<usize>, est: f64, cols: usize) -> PlanNode {
    PlanNode { op, children, est_rows: est, est_row_bytes: 8.0 * cols as f64, out_cols: cols }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// scan → filter(v in [lo,hi]) → optional agg/top: counters must be
    /// exact and the trace self-consistent, for arbitrary predicates and
    /// estimate values (estimates never change truth).
    #[test]
    fn random_filter_plans_uphold_invariants(
        rows in 50usize..400,
        lo in 0i64..1000,
        span in 0i64..1000,
        est in 1.0f64..10_000.0,
        top in proptest::option::of(1u64..50),
        seed in any::<u64>(),
    ) {
        let hi = (lo + span).min(999);
        let database = db(rows);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);

        let mut nodes = vec![
            node(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1, 2] }, vec![], rows as f64, 3),
            node(
                OperatorKind::Filter { pred: Predicate::ColRange { col: 2, lo, hi } },
                vec![0],
                est,
                3,
            ),
        ];
        let mut root = 1;
        if let Some(n) = top {
            nodes.push(node(OperatorKind::Top { n }, vec![root], n as f64, 3));
            root = 2;
        }
        let plan = PhysicalPlan { nodes, root };
        let cfg = ExecConfig { seed, cost: CostModel::default(), ..ExecConfig::default() };
        let run = run_plan(&catalog, &plan, &cfg);

        // Ground truth by direct evaluation.
        let expected_all = database
            .table("t")
            .column(2)
            .iter()
            .filter(|&&v| v >= lo && v <= hi)
            .count() as u64;
        let expected = top.map_or(expected_all, |n| expected_all.min(n));
        prop_assert_eq!(run.result_rows, expected);
        prop_assert_eq!(run.trace.final_k[root], expected);
        // The scan never exceeds the table size and the filter never
        // exceeds the scan.
        prop_assert!(run.trace.final_k[0] <= rows as u64);
        prop_assert!(run.trace.final_k[1] <= run.trace.final_k[0]);
        // Snapshots are monotone and end at the final counters.
        for w in run.trace.snapshots.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
            for i in 0..plan_len(&run) {
                prop_assert!(w[0].k[i] <= w[1].k[i]);
            }
        }
        let last = run.trace.snapshots.last().unwrap();
        prop_assert_eq!(last.k.as_ref(), run.trace.final_k.as_slice());
        // Pipeline windows fall within [0, total_time].
        for &(a, b) in &run.trace.pipeline_windows {
            if a.is_finite() {
                prop_assert!(a >= 0.0 && b <= run.trace.total_time + 1e-9 && a <= b);
            }
        }
    }

    /// Aggregations: group counts must equal the distinct groups that
    /// survive the filter, independent of cost-model jitter.
    #[test]
    fn random_aggregate_plans_count_groups(
        rows in 50usize..400,
        cut in 0i64..1000,
        seed in any::<u64>(),
    ) {
        let database = db(rows);
        let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
        let catalog = Catalog::new(&database, &design);
        let plan = PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "t".into(), cols: vec![1, 2] }, vec![], rows as f64, 2),
                node(
                    OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: cut } },
                    vec![0],
                    rows as f64 / 2.0,
                    2,
                ),
                node(
                    OperatorKind::HashAggregate {
                        group_cols: vec![0],
                        aggs: vec![AggFunc::Count, AggFunc::Sum { col: 1 }],
                    },
                    vec![1],
                    7.0,
                    3,
                ),
            ],
            root: 2,
        };
        let run = run_plan(&catalog, &plan, &ExecConfig { seed, ..ExecConfig::default() });
        let t = database.table("t");
        let mut groups = std::collections::HashSet::new();
        for i in 0..rows {
            if t.value(i, 2) < cut {
                groups.insert(t.value(i, 1));
            }
        }
        prop_assert_eq!(run.result_rows, groups.len() as u64);
    }
}

fn plan_len(run: &prosel_engine::QueryRun) -> usize {
    run.plan.len()
}
