//! Property tests for the snapshot-delta tap wire format: a delta stream
//! (full baseline + sparse [`TraceEvent::Delta`] diffs) must reconstruct
//! the exact full-snapshot stream, bit for bit, on arbitrary counter
//! sequences and on real tapped executions.

use proptest::prelude::*;
use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
use prosel_engine::plan::{OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::trace::{DeltaDecoder, DeltaEncoder, Snapshot, TraceEvent};
use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};

/// One randomly grown observation stream: cumulative (monotone) counters
/// for a random node count plus evolving pipeline activity windows. The
/// proptest shim composes strategies by direct `new_value` calls rather
/// than `prop_flat_map`, so this is a hand-rolled composite.
struct StreamStrategy;

impl Strategy for StreamStrategy {
    type Value = (Vec<Snapshot>, Vec<Vec<(f64, f64)>>);

    fn new_value(&self, rng: &mut proptest::TestRng) -> Self::Value {
        let n_nodes = (1usize..6).new_value(rng);
        let n_pipes = (1usize..4).new_value(rng);
        let n_steps = (1usize..10).new_value(rng);
        let mut k = vec![0u64; n_nodes];
        let mut br = vec![0u64; n_nodes];
        let mut bw = vec![0u64; n_nodes];
        let mut mat = vec![0u64; n_nodes];
        let mut win = vec![(f64::INFINITY, f64::NEG_INFINITY); n_pipes];
        let mut snaps = Vec::new();
        let mut wins = Vec::new();
        for t in 0..n_steps {
            let time = (t + 1) as f64;
            for i in 0..n_nodes {
                // Zero increments are common so deltas are genuinely sparse.
                k[i] += (0u64..4).new_value(rng) * (0u64..30).new_value(rng);
                br[i] += (0u64..4).new_value(rng) * (0u64..200).new_value(rng);
                bw[i] += (0u64..2).new_value(rng) * (0u64..200).new_value(rng);
                mat[i] += (0u64..2).new_value(rng) * (0u64..40).new_value(rng);
            }
            for w in win.iter_mut().take(n_pipes) {
                match (0u8..3).new_value(rng) {
                    0 => {}
                    _ if !w.0.is_finite() => *w = (time, time),
                    _ => w.1 = time,
                }
            }
            snaps.push(Snapshot {
                time,
                k: k.clone().into_boxed_slice(),
                bytes_read: br.clone().into_boxed_slice(),
                bytes_written: bw.clone().into_boxed_slice(),
                materialized: mat.clone().into_boxed_slice(),
            });
            wins.push(win.clone());
        }
        (snaps, wins)
    }
}

fn stream_strategy() -> StreamStrategy {
    StreamStrategy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode reconstructs every snapshot and window vector
    /// exactly, deltas list only pairs that actually changed, and
    /// replaying a delta is idempotent (absolute values — the property
    /// that makes the format insensitive to buffer thinning).
    #[test]
    fn delta_roundtrip_is_exact(stream in stream_strategy()) {
        let (snaps, wins) = stream;
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        for (j, (snap, windows)) in snaps.iter().zip(&wins).enumerate() {
            match enc.encode(snap, windows) {
                None => {
                    // First emission: full baseline.
                    prop_assert_eq!(j, 0);
                    dec.apply_full(snap, windows);
                }
                Some((changes, window_updates)) => {
                    let prev = snaps[j - 1].clone();
                    for c in changes.iter() {
                        // Sparse: every listed pair genuinely changed.
                        let n = c.node as usize;
                        let old = match c.counter {
                            prosel_engine::trace::CounterKind::GetNext => prev.k[n],
                            prosel_engine::trace::CounterKind::BytesRead => prev.bytes_read[n],
                            prosel_engine::trace::CounterKind::BytesWritten => prev.bytes_written[n],
                            prosel_engine::trace::CounterKind::Materialized => prev.materialized[n],
                        };
                        prop_assert_ne!(old, c.value);
                    }
                    prop_assert!(dec.apply_delta(snap.time, &changes, &window_updates));
                    // Idempotent: absolute values, so replay changes nothing.
                    prop_assert!(dec.apply_delta(snap.time, &changes, &window_updates));
                }
            }
            let got = dec.view().to_snapshot();
            prop_assert_eq!(&got, snap);
            prop_assert_eq!(got.time.to_bits(), snap.time.to_bits());
            prop_assert_eq!(dec.windows().len(), windows.len());
            for (a, b) in dec.windows().iter().zip(windows) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    /// A delta against an unprimed decoder, or with out-of-range indices,
    /// is refused and leaves the decoder untouched.
    #[test]
    fn malformed_deltas_are_refused(stream in stream_strategy()) {
        use prosel_engine::trace::{CounterKind, CounterUpdate};
        let (snaps, wins) = stream;
        let snap = &snaps[0];
        let windows = &wins[0];
        let mut dec = DeltaDecoder::new();
        prop_assert!(!dec.primed());
        prop_assert!(!dec.apply_delta(1.0, &[], &[]));
        dec.apply_full(snap, windows);
        let bad_node = CounterUpdate {
            node: snap.k.len() as u32,
            counter: CounterKind::GetNext,
            value: 1,
        };
        let before = dec.view().to_snapshot();
        prop_assert!(!dec.apply_delta(2.0, &[bad_node], &[]));
        prop_assert!(!dec.apply_delta(2.0, &[], &[(windows.len() as u32, (0.0, 1.0))]));
        prop_assert_eq!(dec.view().to_snapshot(), before);
    }
}

fn db(rows: usize) -> Database {
    let mut db = Database::new("delta");
    let meta = TableMeta::new(
        "t",
        64,
        vec![
            ColumnMeta::new("id", ColumnRole::PrimaryKey),
            ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 999 }),
        ],
    );
    db.add(Table::new(
        meta,
        vec![
            Column { name: "id".into(), data: (1..=rows as i64).collect() },
            Column { name: "v".into(), data: (0..rows as i64).map(|i| (i * 37) % 1000).collect() },
        ],
    ));
    db
}

/// Run one tapped execution and collect its event stream.
fn tapped_events(cfg: &ExecConfig) -> Vec<TraceEvent> {
    let database = db(300);
    let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
    let catalog = Catalog::new(&database, &design);
    let mk = |op, children, est: f64, cols: usize| PlanNode {
        op,
        children,
        est_rows: est,
        est_row_bytes: 8.0 * cols as f64,
        out_cols: cols,
    };
    // scan → filter → sort → top: two pipelines, so window updates and
    // per-node counter sparsity both get exercised.
    let plan = PhysicalPlan {
        nodes: vec![
            mk(OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] }, vec![], 300.0, 2),
            mk(
                OperatorKind::Filter { pred: Predicate::ColRange { col: 1, lo: 100, hi: 800 } },
                vec![0],
                200.0,
                2,
            ),
            mk(OperatorKind::Sort { key_cols: vec![1] }, vec![1], 200.0, 2),
            mk(OperatorKind::Top { n: 40 }, vec![2], 40.0, 2),
        ],
        root: 3,
    };
    let (tx, rx) = std::sync::mpsc::channel();
    run_plan_tapped(&catalog, &plan, cfg, 11, tx);
    rx.try_iter().collect()
}

/// The tapped stream with delta compression enabled reconstructs, event
/// for event, the exact stream emitted with compression disabled.
#[test]
fn tapped_delta_stream_reconstructs_full_stream() {
    use prosel_engine::clock::ManualClock;
    use std::sync::Arc;
    // A stepping manual clock makes wall stamps a pure function of the
    // emission sequence, so the two runs compare bitwise.
    let base = ExecConfig {
        seed: 9,
        wall_clock: Arc::new(ManualClock::stepping(0.0, 0.25)),
        ..ExecConfig::default()
    };
    let full = tapped_events(&base);
    let delta = tapped_events(&ExecConfig {
        wall_clock: Arc::new(ManualClock::stepping(0.0, 0.25)),
        delta_threshold: 1,
        ..base
    });
    assert_eq!(full.len(), delta.len());
    let n_deltas = delta.iter().filter(|e| matches!(e, TraceEvent::Delta { .. })).count();
    assert!(n_deltas > 0, "threshold 1 on a 4-node plan must emit deltas past the baseline");
    let mut dec = DeltaDecoder::new();
    for (f, d) in full.iter().zip(&delta) {
        match (f, d) {
            (
                TraceEvent::Snapshot { query, seq, wall, snapshot, windows },
                TraceEvent::Delta {
                    query: dq,
                    seq: dseq,
                    wall: dwall,
                    time,
                    changes,
                    window_updates,
                },
            ) => {
                assert_eq!((query, seq), (dq, dseq));
                assert_eq!(wall.to_bits(), dwall.to_bits());
                assert!(dec.apply_delta(*time, changes, window_updates));
                assert_eq!(&dec.view().to_snapshot(), snapshot);
                assert_eq!(dec.windows(), windows.as_ref());
                // Compression must not cost bytes: the sparse encoding of
                // a snapshot never exceeds the full one.
                assert!(d.payload_bytes() <= f.payload_bytes());
            }
            (TraceEvent::Snapshot { snapshot, windows, .. }, _) => {
                // Baseline (or any uncompressed emission): identical events.
                assert_eq!(f, d);
                dec.apply_full(snapshot, windows);
            }
            _ => assert_eq!(f, d),
        }
    }
    assert!(dec.primed());
}
