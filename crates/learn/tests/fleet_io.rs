//! Property tests for the fleet codecs: the publication frames a
//! [`SelectorHub`] ships to followers and the learner checkpoints the
//! trainer writes to disk. Both must round-trip exactly and reject every
//! torn, corrupted or polluted blob — a follower or a restarted trainer
//! either resumes the exact published/checkpointed state or refuses.

use proptest::prelude::*;
use prosel_core::features::FeatureSchema;
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_estimators::EstimatorKind;
use prosel_learn::{
    BufferConfig, LearnConfig, OnlineLearner, SelectorHub, SelectorSubscriber, SubscribeError,
};
use prosel_mart::BoostParams;
use prosel_monitor::HarvestedQuery;
use std::io::BufReader;
use std::sync::Arc;

fn synthetic_records(n: usize, seed: u64) -> Vec<PipelineRecord> {
    let dims = FeatureSchema::get().len();
    (0..n)
        .map(|i| {
            let x = ((i as u64).wrapping_mul(seed | 1) % 7) as f32;
            let mut features = vec![0.0f32; dims];
            features[0] = x;
            features[1] = (i % 5) as f32;
            let mut errors = vec![0.6f32; 8];
            errors[0] = if x < 3.5 { 0.05 } else { 0.4 };
            errors[1] = if x < 3.5 { 0.4 } else { 0.05 };
            PipelineRecord {
                workload: format!("syn{}", i % 3),
                query_idx: i,
                pipeline_id: 0,
                features,
                errors_l1: errors.clone(),
                errors_l2: errors,
                total_getnext: 10,
                weight: 1.0,
                n_obs: 10,
                fingerprint: "scan|syn".into(),
                oracle_l1: [0.0; 2],
                oracle_l2: [0.0; 2],
            }
        })
        .collect()
}

fn tiny_selector(seed: u64) -> EstimatorSelector {
    let records = synthetic_records(40, seed);
    let cfg = SelectorConfig {
        candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo],
        boost: BoostParams { iterations: 4, seed, ..BoostParams::fast() },
        ..SelectorConfig::default()
    };
    EstimatorSelector::train(&TrainingSet::from_records(&records), &cfg)
}

/// A learner with absorbed harvests and live reservoir/holdout state —
/// the thing a trainer would checkpoint mid-run.
fn warm_learner(seed: u64) -> OnlineLearner {
    let mut learner = OnlineLearner::new(
        Arc::new(tiny_selector(seed)),
        LearnConfig {
            buffer: BufferConfig {
                capacity: 24, // smaller than the stream: reservoir draws happen
                group_quota: 6,
                seed,
                ..BufferConfig::default()
            },
            retrain_every: 0,
            holdout_every: 3,
            min_records: 8,
            warm_trees: 0,
            ..LearnConfig::default()
        },
    );
    for (qi, chunk) in synthetic_records(36, seed ^ 0x5EED).chunks(4).enumerate() {
        learner.absorb(&HarvestedQuery {
            query: qi,
            selector_epoch: 0,
            total_time: 0.0,
            records: chunk.to_vec(),
            switches: Vec::new(),
        });
    }
    learner
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hub frame → subscriber install round-trips: the installed selector
    /// re-encodes to the identical frame and scores identically.
    #[test]
    fn publication_round_trip_is_exact(seed in 1u64..500, epoch in 1u64..1000) {
        let sel = tiny_selector(seed);
        let frame = SelectorHub::encode_frame(epoch, &sel);
        let mut sub = SelectorSubscriber::new();
        let p = sub
            .recv_from(&mut BufReader::new(frame.as_bytes()))
            .expect("own frame must install")
            .expect("one frame present");
        prop_assert_eq!(p.epoch, epoch);
        prop_assert_eq!(SelectorHub::encode_frame(epoch, &p.selector), frame);
        for r in synthetic_records(12, seed ^ 0xABCD) {
            prop_assert_eq!(sel.select(&r.features), p.selector.select(&r.features));
        }
    }

    /// Every strict prefix of a frame is refused without an install: a
    /// torn stream can never hand a follower a different model.
    #[test]
    fn torn_publications_never_install(seed in 1u64..500, frac in 0.0f64..1.0) {
        let frame = SelectorHub::encode_frame(1, &tiny_selector(seed));
        let cut = 1 + ((frame.len() - 2) as f64 * frac) as usize; // 1..frame.len()-1
        let mut sub = SelectorSubscriber::new();
        let out = sub.recv_from(&mut BufReader::new(&frame.as_bytes()[..cut]));
        prop_assert!(out.is_err(), "prefix of {} of {} bytes must be refused", cut, frame.len());
        prop_assert!(sub.current().is_none(), "nothing may install from a torn frame");
    }

    /// A corrupted payload byte inside a structurally complete frame is a
    /// checksum mismatch, and the next frame on the stream still installs.
    #[test]
    fn corrupted_payloads_are_skipped_not_installed(seed in 1u64..500, frac in 0.0f64..1.0) {
        let sel = tiny_selector(seed);
        let good = SelectorHub::encode_frame(2, &sel);
        let mut corrupt = SelectorHub::encode_frame(1, &sel).into_bytes();
        let body_start = corrupt
            .windows(1)
            .enumerate()
            .filter(|(_, w)| w[0] == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        let body_end = corrupt.len() - "endpublication\n".len();
        let idx = body_start + ((body_end - body_start - 1) as f64 * frac) as usize;
        corrupt[idx] ^= 0x20; // flip case/space: same length, different bytes
        let stream = [corrupt.as_slice(), good.as_bytes()].concat();
        let mut sub = SelectorSubscriber::new();
        let mut reader = BufReader::new(stream.as_slice());
        match sub.recv_from(&mut reader) {
            Err(SubscribeError::ChecksumMismatch { declared, computed }) => {
                prop_assert_ne!(declared, computed);
            }
            // The checksum gate runs before any payload parse, so a
            // flipped byte can never surface as any other outcome.
            Ok(_) => prop_assert!(false, "corrupted frame must not install"),
            Err(e) => prop_assert!(false, "want ChecksumMismatch, got {:?}", e),
        }
        prop_assert!(sub.current().is_none());
        let p = sub.recv_from(&mut reader).expect("clean frame follows").expect("frame");
        prop_assert_eq!(p.epoch, 2);
    }

    /// Checkpoint → restore → checkpoint is the identity on the text, and
    /// the restored learner retrains to the identical model.
    #[test]
    fn checkpoint_round_trip_is_bit_identical(seed in 1u64..500) {
        let mut learner = warm_learner(seed);
        let text = learner.checkpoint();
        let mut back = OnlineLearner::restore(&text).expect("own checkpoint must restore");
        prop_assert_eq!(back.checkpoint(), text);
        // The restored reservoir replays: both learners' next retrain
        // produces byte-identical selector text.
        let a = learner.retrain();
        let b = back.retrain();
        prop_assert_eq!(a.promoted, b.promoted);
        prop_assert_eq!(learner.current().to_text(), back.current().to_text());
    }

    /// Every strict line-prefix of a checkpoint is rejected: a torn write
    /// can never restore as a (different) learner.
    #[test]
    fn checkpoint_truncations_are_rejected(seed in 1u64..500, frac in 0.0f64..1.0) {
        let text = warm_learner(seed).checkpoint();
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() - 1) as f64 * frac) as usize; // < lines.len()
        let truncated = lines[..keep].join("\n");
        prop_assert!(
            OnlineLearner::restore(&truncated).is_err(),
            "prefix of {} of {} lines must not restore", keep, lines.len()
        );
    }

    /// An observed subscriber's trace ring records one `FrameRejected`
    /// event — with the matching typed reason — for **every** refused
    /// frame, and the install/refusal counters agree with the outcomes.
    #[test]
    fn trace_ring_captures_every_refusal(seed in 1u64..500) {
        use prosel_core::textio::fnv64;
        use prosel_engine::clock::ManualClock;
        use prosel_obs::{FrameRejectReason, MetricsRegistry, ObsEvent, TraceRing};

        let sel = tiny_selector(seed);
        let good2 = SelectorHub::encode_frame(2, &sel);
        let stale1 = SelectorHub::encode_frame(1, &sel);
        let mut corrupt3 = SelectorHub::encode_frame(3, &sel).into_bytes();
        let body_start = corrupt3
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        corrupt3[body_start] ^= 0x20;
        let good4 = SelectorHub::encode_frame(4, &sel);
        let junk = "not a selector\n";
        let malformed9 = format!(
            "prosel-publication v1\nepoch 9 bytes {} checksum {:016x}\n{junk}endpublication\n",
            junk.len(),
            fnv64(junk.as_bytes()),
        );
        let frame10 = SelectorHub::encode_frame(10, &sel);
        let torn10 = &frame10.as_bytes()[..40];
        let stream = [
            good2.as_bytes(),
            stale1.as_bytes(),
            corrupt3.as_slice(),
            good4.as_bytes(),
            malformed9.as_bytes(),
            torn10,
        ]
        .concat();

        let registry = MetricsRegistry::new();
        let ring = TraceRing::new(16, Arc::new(ManualClock::new(0.0)));
        let mut sub = SelectorSubscriber::new();
        sub.observe(&registry, ring.clone());
        let mut reader = BufReader::new(stream.as_slice());
        let mut installs = 0u64;
        let mut refusals = 0u64;
        for _ in 0..6 {
            match sub.recv_from(&mut reader) {
                Ok(Some(_)) => installs += 1,
                Ok(None) => break,
                Err(_) => refusals += 1,
            }
        }
        prop_assert_eq!(installs, 2);
        prop_assert_eq!(refusals, 4);
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("subscriber_installed_total"), Some(installs));
        prop_assert_eq!(snap.counter("subscriber_refused_total"), Some(refusals));
        let reasons: Vec<FrameRejectReason> = ring
            .recent()
            .iter()
            .filter_map(|r| match r.event {
                ObsEvent::FrameRejected { reason } => Some(reason),
                _ => None,
            })
            .collect();
        prop_assert_eq!(reasons.len() as u64, refusals, "one ring event per refusal");
        prop_assert_eq!(reasons[0], FrameRejectReason::StaleEpoch { current: 2, offered: 1 });
        prop_assert!(matches!(reasons[1], FrameRejectReason::ChecksumMismatch { .. }));
        prop_assert_eq!(reasons[2], FrameRejectReason::Malformed);
        prop_assert_eq!(reasons[3], FrameRejectReason::Torn);
    }

    /// A foreign line injected anywhere in a checkpoint is rejected.
    #[test]
    fn checkpoint_garbage_is_rejected(seed in 1u64..500, frac in 0.0f64..1.0) {
        let text = warm_learner(seed).checkpoint();
        let mut lines: Vec<&str> = text.lines().collect();
        let pos = ((lines.len()) as f64 * frac) as usize;
        lines.insert(pos.min(lines.len()), "garbage 0.5 xyz");
        let mut polluted = lines.join("\n");
        polluted.push('\n');
        prop_assert!(
            OnlineLearner::restore(&polluted).is_err(),
            "garbage at line {} must not restore", pos
        );
    }
}
