//! End-to-end tests of the harvest → buffer → retrain → swap loop over
//! real (simulated) executions.

use prosel_core::pipeline_runs::collect_workload_records;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};
use prosel_learn::{BufferConfig, LearnConfig, OnlineLearner, SelectorHub, Trainer};
use prosel_mart::BoostParams;
use prosel_monitor::{HarvestConfig, HarvestedQuery, MonitorBuilder};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use std::sync::Arc;

fn fast_selector_config() -> SelectorConfig {
    SelectorConfig {
        boost: BoostParams { iterations: 12, ..BoostParams::fast() },
        ..SelectorConfig::default()
    }
}

/// Train a small bootstrap selector on batch-collected records.
fn bootstrap_selector() -> EstimatorSelector {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xB001).with_queries(8).with_scale(0.4);
    let records = collect_workload_records(&spec).expect("bootstrap workload");
    EstimatorSelector::train(&TrainingSet::from_records(&records), &fast_selector_config())
}

/// Run every query of `spec` tapped through a harvesting monitor built on
/// `selector`, returning the harvests in deterministic (query) order.
fn harvest_workload(spec: &WorkloadSpec, selector: Arc<EstimatorSelector>) -> Vec<HarvestedQuery> {
    let w = materialize(spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let (sink, rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::with_selector(selector)
        .harvester(Arc::new(sink), HarvestConfig { label: spec.label(), min_observations: 5 })
        .build_monitor()
        .expect("build");
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let (tap, events) = std::sync::mpsc::channel();
        monitor.register(qi, &plan);
        let cfg = ExecConfig { seed: 0x11AB ^ qi as u64, ..ExecConfig::default() };
        let _run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
        monitor.drain(&events);
    }
    drop(monitor);
    rx.try_iter().collect()
}

fn learn_config() -> LearnConfig {
    LearnConfig {
        buffer: BufferConfig { capacity: 512, group_quota: 16, ..BufferConfig::default() },
        retrain_every: 0, // retrain on demand in these tests
        holdout_every: 4,
        min_records: 8,
        warm_trees: 16,
        ..LearnConfig::default()
    }
}

#[test]
fn the_loop_is_deterministic_end_to_end() {
    let run_once = || {
        let base = Arc::new(bootstrap_selector());
        let mut learner = OnlineLearner::new(Arc::clone(&base), learn_config());
        let spec =
            WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xFEE0).with_queries(10).with_scale(0.4);
        for h in harvest_workload(&spec, base) {
            learner.absorb(&h);
        }
        let outcome = learner.retrain();
        (learner.current().to_text(), outcome.promoted, learner.buffer().len())
    };
    let (a_text, a_promoted, a_len) = run_once();
    let (b_text, b_promoted, b_len) = run_once();
    assert_eq!(a_text, b_text, "same harvest stream + seeds => bit-identical selector");
    assert_eq!(a_promoted, b_promoted);
    assert_eq!(a_len, b_len);
}

#[test]
fn guarded_promotion_never_degrades_the_validation_score() {
    let base = Arc::new(bootstrap_selector());
    let mut learner = OnlineLearner::new(Arc::clone(&base), learn_config());
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xFEE1).with_queries(12).with_scale(0.4);
    for h in harvest_workload(&spec, Arc::clone(&base)) {
        learner.absorb(&h);
    }
    assert!(learner.buffer().len() >= 8, "buffered {}", learner.buffer().len());
    assert!(learner.validation_len() > 0, "holdout must have material");
    let outcome = learner.retrain();
    assert_eq!(outcome.trained_on, learner.buffer().len());
    assert!(outcome.validation > 0);
    if outcome.promoted {
        assert!(
            outcome.candidate_l1 <= outcome.incumbent_l1,
            "promotion requires candidate ({}) <= incumbent ({})",
            outcome.candidate_l1,
            outcome.incumbent_l1
        );
        assert!(!Arc::ptr_eq(&learner.current(), &base));
    } else {
        assert!(Arc::ptr_eq(&learner.current(), &base), "rejected => incumbent survives");
    }
    let stats = learner.stats();
    assert_eq!(stats.retrains, 1);
    assert_eq!(stats.promotions + stats.rejections, 1);
}

#[test]
fn tree_cap_forces_cold_refits_instead_of_unbounded_growth() {
    let widest = |sel: &EstimatorSelector| {
        sel.config()
            .candidates
            .iter()
            .filter_map(|&k| sel.model(k))
            .map(prosel_mart::Mart::n_trees)
            .max()
            .unwrap_or(0)
    };
    let base = Arc::new(bootstrap_selector()); // 12 boosting iterations
    let base_width = widest(&base);
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xFEE3).with_queries(10).with_scale(0.4);
    let harvests = harvest_workload(&spec, Arc::clone(&base));
    // holdout_every 0 => unguarded promotion, so growth is observable.
    let run = |max_trees: usize| {
        let mut learner = OnlineLearner::new(
            Arc::clone(&base),
            LearnConfig { holdout_every: 0, max_trees, ..learn_config() },
        );
        for h in &harvests {
            learner.absorb(h);
        }
        for _ in 0..3 {
            assert!(learner.retrain().promoted, "unguarded rounds always promote");
        }
        widest(&learner.current())
    };
    let uncapped = run(0);
    assert!(uncapped > base_width, "warm rounds must have appended trees ({uncapped})");
    let capped = run(base_width + 1); // warm start would immediately overflow
    assert!(capped <= uncapped, "capped loop must not outgrow the uncapped one");
    // Cold refits rebuild at the config's from-scratch size (12 boosting
    // iterations here) instead of stacking warm rounds forever.
    assert!(capped <= 12, "cold refits keep the ensemble bounded (got {capped})");
}

#[test]
fn background_trainer_publishes_promotions_and_flushes_the_tail() {
    let base = Arc::new(bootstrap_selector());
    let hub = Arc::new(SelectorHub::new(Arc::clone(&base)));
    let config = LearnConfig { retrain_every: 6, ..learn_config() };
    let learner = OnlineLearner::new(Arc::clone(&base), config);
    let (tx, rx) = std::sync::mpsc::channel();
    let trainer = {
        let hub = Arc::clone(&hub);
        Trainer::spawn(learner, rx, move |sel| {
            hub.publish(Arc::clone(sel));
        })
    };
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xFEE2).with_queries(10).with_scale(0.4);
    let harvests = harvest_workload(&spec, Arc::clone(&base));
    assert!(harvests.len() == 10);
    for h in harvests {
        tx.send(h).expect("trainer alive");
    }
    drop(tx); // disconnect => trainer flushes the tail and exits
    let learner = trainer.join();
    let stats = learner.stats();
    assert_eq!(stats.harvested_queries, 10);
    // 10 queries at a cadence of 6: one cadence retrain + one tail flush.
    assert_eq!(stats.retrains + stats.skipped, 2);
    assert_eq!(hub.epoch(), stats.promotions as u64, "every promotion was published");
    if stats.promotions > 0 {
        assert!(Arc::ptr_eq(&hub.selector(), &learner.current()));
    }
}
