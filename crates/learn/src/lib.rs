//! # prosel-learn
//!
//! The **online-learning loop**: turn the monitor's finished queries back
//! into training signal, retrain the estimator selector in the
//! background, and hot-swap versioned models into the live service.
//!
//! The paper trains its selector offline, but §4.4 frames the runtime
//! revision points — the logged estimator switches — as exactly the
//! signal a deployed system should learn from; and the estimation
//! literature (Shepperd & MacDonell 2012; "Impacts of Bad ESP" in
//! PAPERS.md) shows that prediction systems drift badly when early models
//! are never revised against observed error. This crate closes that loop
//! over the `prosel-monitor` service:
//!
//! ```text
//!  engine tap ─▶ ProgressMonitor / MonitorService
//!                   │  Finished ⇒ harvest: IncrementalObs ─▶ PipelineRecord
//!                   ▼
//!            HarvestedQuery (records + switch history + epoch)
//!                   │
//!                   ▼
//!          TrainingBuffer  — bounded, seeded reservoir with per-group
//!                   │        quotas (heavy traffic cannot evict rare
//!                   │        workloads / plan shapes)
//!                   ▼
//!           OnlineLearner  — deterministic retraining core: warm-start
//!                   │        boosting + guarded promotion against a
//!                   │        held-out validation slice
//!                   ▼
//!        publish ─▶ SelectorHub (epoch n+1) ─▶ swap_selector(…) into the
//!                   monitor/service: **new registrations** pick up the
//!                   new model, in-flight queries keep the selector
//!                   captured at their registration
//! ```
//!
//! Determinism: every stage is a pure function of the harvested-record
//! sequence and the configured seeds — the buffer's reservoir draws, the
//! holdout split, warm-start subsampling and the promotion decision all
//! replay bit-identically. The harvested records themselves are
//! bit-identical to what batch [`prosel_core::pipeline_runs`] extraction
//! would produce over the same traces (pinned by
//! `tests/harvest_equivalence.rs` at the workspace root). [`Trainer`]
//! wraps the deterministic [`OnlineLearner`] core in a background thread
//! for deployments where retraining must not block ingest.

pub mod buffer;
pub mod hub;
pub mod learner;
pub mod trainer;

pub use buffer::{BufferConfig, GroupBy, TrainingBuffer};
pub use hub::SelectorHub;
pub use learner::{LearnConfig, LearnStats, OnlineLearner, RetrainOutcome};
pub use trainer::Trainer;
