//! # prosel-learn
//!
//! The **online-learning loop**: turn the monitor's finished queries back
//! into training signal, retrain the estimator selector in the
//! background, and hot-swap versioned models into the live service.
//!
//! The paper trains its selector offline, but §4.4 frames the runtime
//! revision points — the logged estimator switches — as exactly the
//! signal a deployed system should learn from; and the estimation
//! literature (Shepperd & MacDonell 2012; "Impacts of Bad ESP" in
//! PAPERS.md) shows that prediction systems drift badly when early models
//! are never revised against observed error. This crate closes that loop
//! over the `prosel-monitor` service:
//!
//! ```text
//!  engine tap ─▶ ProgressMonitor / MonitorService
//!                   │  Finished ⇒ harvest: IncrementalObs ─▶ PipelineRecord
//!                   ▼
//!            HarvestedQuery (records + switch history + epoch)
//!                   │
//!                   ▼
//!          TrainingBuffer  — bounded, seeded reservoir with per-group
//!                   │        quotas (heavy traffic cannot evict rare
//!                   │        workloads / plan shapes)
//!                   ▼
//!           OnlineLearner  — deterministic retraining core: warm-start
//!                   │        boosting + guarded promotion against a
//!                   │        held-out validation slice
//!                   ▼
//!        publish ─▶ SelectorHub (epoch n+1) ─▶ swap_selector(…) into the
//!                   monitor/service: **new registrations** pick up the
//!                   new model, in-flight queries keep the selector
//!                   captured at their registration
//! ```
//!
//! Determinism: every stage is a pure function of the harvested-record
//! sequence and the configured seeds — the buffer's reservoir draws, the
//! holdout split, warm-start subsampling and the promotion decision all
//! replay bit-identically. The harvested records themselves are
//! bit-identical to what batch [`prosel_core::pipeline_runs`] extraction
//! would produce over the same traces (pinned by
//! `tests/harvest_equivalence.rs` at the workspace root). [`Trainer`]
//! wraps the deterministic [`OnlineLearner`] core in a background thread
//! for deployments where retraining must not block ingest.
//!
//! ## Fleet operation
//!
//! Three pieces turn the single-process loop into something you can run
//! as a fleet of monitor processes following one trainer:
//!
//! * **Publication protocol** ([`hub`] + [`subscriber`]):
//!   [`SelectorHub::publish_to`] frames `(epoch, checksum, selector)`
//!   onto any byte stream; a [`SelectorSubscriber`] on each follower
//!   decodes and installs frames, rejecting torn, corrupted or stale
//!   (epoch ≤ installed) publications with typed [`SubscribeError`]s — a
//!   follower can never be rolled back or fed a half-written model.
//! * **Checkpoints** ([`checkpoint`]): [`OnlineLearner::checkpoint`] /
//!   [`OnlineLearner::restore`] round-trip the entire learning state —
//!   reservoir records *with their admission stamps and RNG position* —
//!   through a strict checksummed text codec, and
//!   [`Trainer::spawn_with_checkpoints`] emits them on a cadence, so a
//!   crashed trainer resumes bit-identically (same buffer, same next
//!   promoted selector) without losing rare-group samples.
//! * **Decay** ([`buffer::DecayPolicy`]): a max-age bound (measured in
//!   offered records, so replay stays deterministic) ages stale traffic
//!   out of the buffer — after a workload shift the old distribution
//!   drains instead of anchoring the selector forever. The `drift` bench
//!   experiment scores exactly this against a no-decay twin.
//!
//! ## Observability
//!
//! The whole loop publishes into the [`prosel_obs`] layer when asked:
//! [`OnlineLearner::observe`] binds the `learn_*` gauges/counters and the
//! retrain-latency histogram to a [`prosel_obs::MetricsRegistry`] and
//! routes every retrain decision into a [`prosel_obs::TraceRing`]
//! ([`prosel_obs::ObsEvent::RetrainPromoted`] / `RetrainHeld`);
//! [`SelectorSubscriber::observe`] does the same for the follower side,
//! emitting one [`prosel_obs::ObsEvent::FrameRejected`] — with the typed
//! [`prosel_obs::FrameRejectReason`] — per refused publication frame;
//! [`SelectorHub::observe`] counts publications; and the background
//! [`Trainer`] notes each checkpoint artifact
//! ([`prosel_obs::ObsEvent::CheckpointEmitted`]) on the learner's ring.
//! Share the monitor service's registry and ring
//! ([`prosel_monitor::MonitorService::metrics_registry`] /
//! [`prosel_monitor::MonitorService::trace_ring`]) to scrape serving and
//! learning through one exposition.

pub mod buffer;
pub mod checkpoint;
pub mod hub;
pub mod learner;
pub mod subscriber;
pub mod trainer;

pub use buffer::{BufferConfig, DecayPolicy, GroupBy, TrainingBuffer};
pub use checkpoint::CheckpointError;
pub use hub::SelectorHub;
pub use learner::{LearnConfig, LearnStats, OnlineLearner, RetrainOutcome};
pub use subscriber::{Publication, SelectorSubscriber, SubscribeError};
pub use trainer::Trainer;
