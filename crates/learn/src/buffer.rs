//! The bounded, deterministic training buffer between harvest and
//! retraining.
//!
//! A production monitor harvests far more records than any trainer wants
//! to refit on, and the traffic is skewed: one hot workload can produce
//! thousands of records for every one that a rare plan shape yields.
//! Plain FIFO or plain reservoir sampling would both let the hot group
//! wash the rare ones out — and the selector would forget exactly the
//! pipelines it most needs revision on (the "Impacts of Bad ESP" failure
//! mode: estimators drift where feedback is thin).
//!
//! [`TrainingBuffer`] therefore combines
//!
//! * a **seeded reservoir** over the whole stream — every offered record
//!   has a chance to displace a retained one, so the buffer tracks the
//!   traffic distribution without growing; with
//! * **per-group floors** ([`BufferConfig::group_quota`], keyed by
//!   workload label or pipeline fingerprint): a reservoir eviction is
//!   refused when it would shrink a group that holds at most its quota,
//!   so heavy traffic can never evict the last examples of a rare group.
//!
//! Everything is a pure function of the insertion sequence and the seed:
//! the reservoir draws come from one seeded generator consumed in
//! insertion order, and tie-breaks iterate groups in `BTreeMap` order —
//! replaying the same harvest stream reproduces the buffer bit for bit.
//! That purity is also what makes the fleet layer's checkpoint/restore
//! exact: the buffer serializes its retained records, its offer counter
//! and its **draw counter**, and a restore re-seeds the generator and
//! fast-forwards it by that many draws — the restored buffer is
//! indistinguishable from one that never stopped.
//!
//! For drifting workloads a [`DecayPolicy`] ages records out: a record
//! expires once more than `max_age` records have been offered since it
//! was admitted. Age is measured in *offers*, not wall time, so decayed
//! replays stay deterministic; expiry applies to quota-protected groups
//! too — a rare group's floor protects it from *eviction pressure*, not
//! from its own staleness.

use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::training::TrainingSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which record field partitions the buffer into quota groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// The harvest label ([`PipelineRecord::workload`]) — tenant /
    /// workload-class quotas.
    Workload,
    /// The structural pipeline fingerprint — rare *plan shapes* keep
    /// their floor even inside one hot workload.
    Fingerprint,
}

/// How retained records age out of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecayPolicy {
    /// Records live until the reservoir evicts them (the pre-fleet
    /// behavior): the buffer converges on the *lifetime* traffic mix.
    #[default]
    None,
    /// A record expires once more than `max_age` records have been
    /// offered since it was admitted (or last refreshed by replacement).
    /// The buffer then tracks a trailing window of roughly `max_age`
    /// offers, so after a workload shift the old distribution drains out
    /// instead of anchoring the selector forever.
    MaxAge {
        /// Age bound, in offered records. Must be ≥ the capacity to be
        /// useful (a bound below the capacity keeps the buffer
        /// perpetually short).
        max_age: u64,
    },
}

/// Buffer configuration.
#[derive(Debug, Clone)]
pub struct BufferConfig {
    /// Hard bound on retained records.
    pub capacity: usize,
    /// Guaranteed floor per group: evictions never shrink a group holding
    /// at most this many records (groups that never grow past the quota
    /// are effectively pinned). The floors are only simultaneously
    /// satisfiable while `quota × live groups ≤ capacity`; past that
    /// point admission of a new under-quota record falls back to
    /// shrinking the largest group (the floors are mutually
    /// contradictory then) — size the capacity for the group cardinality
    /// you expect.
    pub group_quota: usize,
    /// Grouping key for the quota.
    pub group_by: GroupBy,
    /// Seed of the reservoir's random stream.
    pub seed: u64,
    /// Aging policy for retained records (see [`DecayPolicy`]).
    pub decay: DecayPolicy,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            capacity: 4096,
            group_quota: 64,
            group_by: GroupBy::Workload,
            seed: 0x1EA2,
            decay: DecayPolicy::None,
        }
    }
}

/// Bounded deterministic training buffer. See the module docs for the
/// eviction policy.
#[derive(Debug)]
pub struct TrainingBuffer {
    config: BufferConfig,
    items: Vec<PipelineRecord>,
    /// Admission stamp per retained record (the value of `seen` when the
    /// record entered or last replaced a slot), parallel to `items`.
    /// Drives [`DecayPolicy::MaxAge`] expiry.
    stamps: Vec<u64>,
    /// Live record count per group (groups never seen are absent; groups
    /// evicted to zero keep their entry so the bookkeeping stays simple).
    counts: BTreeMap<String, usize>,
    /// Records offered so far (the reservoir's denominator).
    seen: u64,
    /// Random values drawn so far — with the seed, the generator's whole
    /// state. A checkpoint stores this count; restore re-seeds and
    /// discards this many draws to land on the identical stream position.
    draws: u64,
    /// Smallest stamp possibly still retained (may lag behind after
    /// replacements; only used to skip no-op expiry sweeps).
    oldest_stamp: u64,
    /// Records expired by [`DecayPolicy::MaxAge`] over the buffer's
    /// lifetime (reservoir replacements are not counted here).
    evicted: u64,
    rng: StdRng,
}

impl TrainingBuffer {
    pub fn new(config: BufferConfig) -> TrainingBuffer {
        assert!(config.capacity > 0, "a zero-capacity buffer cannot learn");
        let rng = StdRng::seed_from_u64(config.seed);
        TrainingBuffer {
            config,
            items: Vec::new(),
            stamps: Vec::new(),
            counts: BTreeMap::new(),
            seen: 0,
            draws: 0,
            oldest_stamp: u64::MAX,
            evicted: 0,
            rng,
        }
    }

    /// One counted draw from the reservoir stream. Every consumption of
    /// the generator must route through here or checkpoint fast-forward
    /// would desynchronize.
    fn draw(&mut self) -> u64 {
        self.draws += 1;
        self.rng.next_u64()
    }

    /// Expire records older than the decay bound. O(1) when nothing can
    /// have expired; a full compacting sweep otherwise.
    fn expire(&mut self) {
        let DecayPolicy::MaxAge { max_age } = self.config.decay else {
            return;
        };
        if self.items.is_empty() || self.seen.saturating_sub(self.oldest_stamp) <= max_age {
            return;
        }
        let mut oldest = u64::MAX;
        let mut write = 0;
        for read in 0..self.items.len() {
            if self.seen - self.stamps[read] > max_age {
                let group = self.key_of(&self.items[read]);
                *self.counts.get_mut(&group).expect("retained record has a count") -= 1;
                self.evicted += 1;
                continue;
            }
            oldest = oldest.min(self.stamps[read]);
            if write != read {
                self.items.swap(write, read);
                self.stamps.swap(write, read);
            }
            write += 1;
        }
        self.items.truncate(write);
        self.stamps.truncate(write);
        self.oldest_stamp = oldest;
    }

    /// Offer one record; returns whether it was retained. Deterministic
    /// given the seed and the insertion sequence.
    pub fn insert(&mut self, rec: PipelineRecord) -> bool {
        self.seen += 1;
        self.expire();
        let group = self.key_of(&rec);
        if self.items.len() < self.config.capacity {
            *self.counts.entry(group).or_insert(0) += 1;
            self.oldest_stamp = self.oldest_stamp.min(self.seen);
            self.items.push(rec);
            self.stamps.push(self.seen);
            return true;
        }
        let incoming = self.counts.get(&group).copied().unwrap_or(0);
        if incoming < self.config.group_quota {
            // The incoming record's group is under its floor: admit it
            // unconditionally by evicting a random member of the largest
            // group **above its own floor** (ties broken towards the
            // lexicographically smallest name for determinism) — so one
            // protected group can never be shrunk to admit another. Only
            // in the pathological config where quota × live-groups
            // exceeds the capacity (every group at/below its floor) does
            // the eviction fall back to the largest group overall; the
            // floors are mutually unsatisfiable then, and admitting the
            // newest rare record is the lesser harm. If the fallback
            // victim is the incoming group itself the swap keeps counts
            // unchanged.
            let largest_above_quota = |quota: usize| {
                self.counts
                    .iter()
                    .filter(|&(_, &c)| c > quota)
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(g, _)| g.clone())
            };
            let victim_group = largest_above_quota(self.config.group_quota)
                .or_else(|| largest_above_quota(0))
                .expect("full buffer has at least one group");
            let members = self.counts[&victim_group];
            let pick = (self.draw() % members as u64) as usize;
            let idx = self
                .items
                .iter()
                .enumerate()
                .filter(|(_, r)| self.group_matches(r, &victim_group))
                .nth(pick)
                .map(|(i, _)| i)
                .expect("group count matches membership");
            *self.counts.get_mut(&victim_group).expect("victim group exists") -= 1;
            *self.counts.entry(group).or_insert(0) += 1;
            self.items[idx] = rec;
            self.stamps[idx] = self.seen;
            return true;
        }
        // Classic reservoir step over the whole stream. The denominator
        // stays `seen` (lifetime offers) even under decay: expiry already
        // biases the contents towards the trailing window, and a lifetime
        // denominator keeps replay bit-compatible with the no-decay twin
        // until the first expiry.
        let j = (self.draw() % self.seen) as usize;
        if j >= self.items.len() {
            return false;
        }
        let victim_group = self.key_of(&self.items[j]);
        if victim_group != group && self.counts[&victim_group] <= self.config.group_quota {
            // Replacing would shrink a group at (or below) its floor:
            // the rare group wins, the incoming record is dropped.
            return false;
        }
        *self.counts.get_mut(&victim_group).expect("victim group exists") -= 1;
        *self.counts.entry(group).or_insert(0) += 1;
        self.items[j] = rec;
        self.stamps[j] = self.seen;
        true
    }

    fn key_of(&self, rec: &PipelineRecord) -> String {
        match self.config.group_by {
            GroupBy::Workload => rec.workload.clone(),
            GroupBy::Fingerprint => rec.fingerprint.clone(),
        }
    }

    /// Allocation-free membership test (the eviction scan runs it over up
    /// to `capacity` records per insert).
    fn group_matches(&self, rec: &PipelineRecord, group: &str) -> bool {
        match self.config.group_by {
            GroupBy::Workload => rec.workload == group,
            GroupBy::Fingerprint => rec.fingerprint == group,
        }
    }

    /// Retained records (insertion/replacement order; not meaningful as a
    /// time series).
    pub fn records(&self) -> &[PipelineRecord] {
        &self.items
    }

    /// The retained records as a [`TrainingSet`].
    pub fn training_set(&self) -> TrainingSet {
        TrainingSet { records: self.items.clone() }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Records offered over the buffer's lifetime (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Live record count of one group (0 for groups never seen).
    pub fn group_count(&self, group: &str) -> usize {
        self.counts.get(group).copied().unwrap_or(0)
    }

    /// Groups currently holding at least one record, ascending.
    pub fn groups(&self) -> Vec<&str> {
        self.counts.iter().filter(|&(_, &c)| c > 0).map(|(g, _)| g.as_str()).collect()
    }

    /// The buffer's configuration.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Admission stamps parallel to [`records`](Self::records): the value
    /// of [`seen`](Self::seen) when each retained record entered (or last
    /// refreshed) its slot. Exposed for decay introspection and for the
    /// checkpoint codec's bit-identity guarantees.
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Random values drawn from the reservoir stream so far. Serialized
    /// by checkpoints; restore fast-forwards a re-seeded generator by this
    /// count.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Records aged out by [`DecayPolicy::MaxAge`] over this buffer
    /// instance's lifetime. Not serialized by checkpoints — a restored
    /// buffer restarts the count at zero (it feeds a monitoring gauge,
    /// not the replay state).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Rebuild a buffer from checkpointed parts: retained records with
    /// their stamps, the lifetime offer counter, and the draw counter.
    ///
    /// Group counts are recomputed from the records and the generator is
    /// re-seeded from `config.seed` and fast-forwarded by `draws`, so the
    /// result is bit-identical to the buffer that was checkpointed — the
    /// next insert consumes the same random value it would have.
    pub fn from_parts(
        config: BufferConfig,
        records: Vec<PipelineRecord>,
        stamps: Vec<u64>,
        seen: u64,
        draws: u64,
    ) -> Result<TrainingBuffer, String> {
        if config.capacity == 0 {
            return Err("a zero-capacity buffer cannot learn".into());
        }
        if records.len() != stamps.len() {
            return Err(format!(
                "{} records but {} stamps — the checkpoint is inconsistent",
                records.len(),
                stamps.len()
            ));
        }
        if records.len() > config.capacity {
            return Err(format!(
                "{} records exceed the configured capacity {}",
                records.len(),
                config.capacity
            ));
        }
        if stamps.iter().any(|&s| s == 0 || s > seen) {
            return Err(format!("stamps must lie in 1..=seen ({seen})"));
        }
        let mut buf = TrainingBuffer::new(config);
        for rec in &records {
            *buf.counts.entry(buf.key_of(rec)).or_insert(0) += 1;
        }
        buf.oldest_stamp = stamps.iter().copied().min().unwrap_or(u64::MAX);
        buf.items = records;
        buf.stamps = stamps;
        buf.seen = seen;
        for _ in 0..draws {
            buf.draw();
        }
        debug_assert_eq!(buf.draws, draws);
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_core::features::FeatureSchema;

    fn rec(workload: &str, fingerprint: &str, i: usize) -> PipelineRecord {
        let dims = FeatureSchema::get().len();
        PipelineRecord {
            workload: workload.into(),
            query_idx: i,
            pipeline_id: 0,
            features: vec![i as f32; dims],
            errors_l1: vec![0.1; 8],
            errors_l2: vec![0.1; 8],
            total_getnext: 10,
            weight: 1.0,
            n_obs: 10,
            fingerprint: fingerprint.into(),
            oracle_l1: [0.0; 2],
            oracle_l2: [0.0; 2],
        }
    }

    fn cfg(capacity: usize, quota: usize) -> BufferConfig {
        BufferConfig {
            capacity,
            group_quota: quota,
            group_by: GroupBy::Workload,
            seed: 7,
            decay: DecayPolicy::None,
        }
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut buf = TrainingBuffer::new(cfg(32, 4));
        for i in 0..500 {
            buf.insert(rec("hot", "scan|t", i));
            assert!(buf.len() <= 32);
        }
        assert_eq!(buf.len(), 32);
        assert_eq!(buf.seen(), 500);
    }

    #[test]
    fn heavy_traffic_cannot_evict_a_rare_group() {
        let mut buf = TrainingBuffer::new(cfg(64, 8));
        // Seed the rare group with 5 records (below the quota of 8).
        for i in 0..5 {
            buf.insert(rec("rare", "seek|s", i));
        }
        // Flood with three orders of magnitude more hot traffic.
        for i in 0..5000 {
            buf.insert(rec("hot", "scan|t", i));
        }
        assert_eq!(buf.group_count("rare"), 5, "rare group must keep its floor");
        assert_eq!(buf.len(), 64);
        assert_eq!(buf.group_count("hot"), 59);
    }

    #[test]
    fn a_late_rare_group_still_gets_admitted() {
        let mut buf = TrainingBuffer::new(cfg(32, 4));
        for i in 0..1000 {
            buf.insert(rec("hot", "scan|t", i));
        }
        // Buffer is full of hot records; a new group must still enter.
        for i in 0..3 {
            assert!(buf.insert(rec("late", "sort|u", i)), "under-quota insert is unconditional");
        }
        assert_eq!(buf.group_count("late"), 3);
        assert_eq!(buf.len(), 32);
    }

    #[test]
    fn under_quota_admission_spares_other_protected_groups() {
        // Buffer full with one huge group and one small protected group;
        // admitting records of a third group must always evict from the
        // huge (above-quota) group, never from the protected one.
        let mut buf = TrainingBuffer::new(cfg(48, 8));
        for i in 0..6 {
            buf.insert(rec("small", "seek|s", i));
        }
        for i in 0..500 {
            buf.insert(rec("huge", "scan|t", i));
        }
        assert_eq!(buf.group_count("small"), 6);
        for i in 0..8 {
            assert!(buf.insert(rec("third", "sort|u", i)));
            assert_eq!(buf.group_count("small"), 6, "protected group must not fund admission");
        }
        assert_eq!(buf.group_count("third"), 8);
        assert_eq!(buf.len(), 48);
    }

    #[test]
    fn deterministic_replay() {
        let stream: Vec<PipelineRecord> =
            (0..800).map(|i| rec(if i % 17 == 0 { "rare" } else { "hot" }, "scan|t", i)).collect();
        let run = |seed: u64| {
            let mut buf = TrainingBuffer::new(BufferConfig { seed, ..cfg(48, 6) });
            for r in &stream {
                buf.insert(r.clone());
            }
            buf.records().iter().map(|r| (r.workload.clone(), r.query_idx)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same stream => same buffer");
        assert_ne!(run(3), run(4), "the reservoir really is random across seeds");
    }

    #[test]
    fn fingerprint_grouping_protects_rare_plan_shapes() {
        let mut buf = TrainingBuffer::new(BufferConfig {
            capacity: 40,
            group_quota: 4,
            group_by: GroupBy::Fingerprint,
            seed: 1,
            decay: DecayPolicy::None,
        });
        for i in 0..3 {
            buf.insert(rec("w", "merge-sort|a,b", i));
        }
        for i in 0..2000 {
            buf.insert(rec("w", "scan|t", i));
        }
        assert_eq!(buf.group_count("merge-sort|a,b"), 3);
    }

    #[test]
    fn zero_capacity_is_refused() {
        let result = std::panic::catch_unwind(|| TrainingBuffer::new(cfg(0, 1)));
        assert!(result.is_err());
    }

    #[test]
    fn max_age_decay_drains_a_stale_workload() {
        let mut buf = TrainingBuffer::new(BufferConfig {
            decay: DecayPolicy::MaxAge { max_age: 200 },
            ..cfg(64, 4)
        });
        for i in 0..100 {
            buf.insert(rec("old", "scan|t", i));
        }
        assert_eq!(buf.group_count("old"), 64);
        // The workload shifts; after > max_age further offers every "old"
        // record has aged out, quota floor or not.
        for i in 0..400 {
            buf.insert(rec("new", "seek|s", i));
        }
        assert_eq!(buf.group_count("old"), 0, "stale records must age out");
        assert!(buf.group_count("new") > 0);
        assert!(buf.len() <= 64);
        assert!(buf.evicted() > 0, "aged-out records are counted");
        // The no-decay twin keeps the old group pinned forever.
        let mut pinned = TrainingBuffer::new(cfg(64, 4));
        for i in 0..100 {
            pinned.insert(rec("old", "scan|t", i));
        }
        for i in 0..400 {
            pinned.insert(rec("new", "seek|s", i));
        }
        assert!(pinned.group_count("old") >= 4, "without decay the floor pins stale records");
    }

    #[test]
    fn decay_replay_is_deterministic_and_stamps_track_refreshes() {
        let stream: Vec<PipelineRecord> =
            (0..600).map(|i| rec(if i < 300 { "a" } else { "b" }, "scan|t", i)).collect();
        let run = || {
            let mut buf = TrainingBuffer::new(BufferConfig {
                decay: DecayPolicy::MaxAge { max_age: 150 },
                ..cfg(32, 4)
            });
            for r in &stream {
                buf.insert(r.clone());
            }
            (
                buf.records().iter().map(|r| (r.workload.clone(), r.query_idx)).collect::<Vec<_>>(),
                buf.stamps().to_vec(),
                buf.draws(),
            )
        };
        assert_eq!(run(), run(), "decayed replay must be bit-deterministic");
        let (_, stamps, _) = run();
        assert!(stamps.iter().all(|&s| 600 - s <= 150), "every survivor is within the age bound");
    }

    #[test]
    fn from_parts_resumes_the_reservoir_bit_identically() {
        let stream: Vec<PipelineRecord> =
            (0..900).map(|i| rec(if i % 13 == 0 { "rare" } else { "hot" }, "scan|t", i)).collect();
        let (head, tail) = stream.split_at(500);
        let mut live = TrainingBuffer::new(cfg(48, 6));
        for r in head {
            live.insert(r.clone());
        }
        // Capture the mid-stream state, rebuild, and replay the tail on
        // both; the restored buffer must shadow the live one exactly.
        let mut restored = TrainingBuffer::from_parts(
            live.config().clone(),
            live.records().to_vec(),
            live.stamps().to_vec(),
            live.seen(),
            live.draws(),
        )
        .expect("valid parts");
        for r in tail {
            live.insert(r.clone());
            restored.insert(r.clone());
        }
        let shape = |b: &TrainingBuffer| {
            (
                b.records().iter().map(|r| (r.workload.clone(), r.query_idx)).collect::<Vec<_>>(),
                b.stamps().to_vec(),
                b.seen(),
                b.draws(),
            )
        };
        assert_eq!(shape(&live), shape(&restored));
    }

    #[test]
    fn from_parts_rejects_inconsistent_checkpoints() {
        let records = vec![rec("w", "scan|t", 0)];
        assert!(TrainingBuffer::from_parts(cfg(8, 1), records.clone(), vec![], 1, 0).is_err());
        assert!(TrainingBuffer::from_parts(cfg(8, 1), records.clone(), vec![5], 3, 0).is_err());
        assert!(TrainingBuffer::from_parts(cfg(8, 1), records.clone(), vec![0], 3, 0).is_err());
        assert!(TrainingBuffer::from_parts(cfg(0, 1), records.clone(), vec![1], 3, 0).is_err());
        let many = vec![rec("w", "scan|t", 0), rec("w", "scan|t", 1)];
        assert!(TrainingBuffer::from_parts(cfg(1, 1), many, vec![1, 2], 2, 0).is_err());
    }
}
