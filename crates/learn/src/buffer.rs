//! The bounded, deterministic training buffer between harvest and
//! retraining.
//!
//! A production monitor harvests far more records than any trainer wants
//! to refit on, and the traffic is skewed: one hot workload can produce
//! thousands of records for every one that a rare plan shape yields.
//! Plain FIFO or plain reservoir sampling would both let the hot group
//! wash the rare ones out — and the selector would forget exactly the
//! pipelines it most needs revision on (the "Impacts of Bad ESP" failure
//! mode: estimators drift where feedback is thin).
//!
//! [`TrainingBuffer`] therefore combines
//!
//! * a **seeded reservoir** over the whole stream — every offered record
//!   has a chance to displace a retained one, so the buffer tracks the
//!   traffic distribution without growing; with
//! * **per-group floors** ([`BufferConfig::group_quota`], keyed by
//!   workload label or pipeline fingerprint): a reservoir eviction is
//!   refused when it would shrink a group that holds at most its quota,
//!   so heavy traffic can never evict the last examples of a rare group.
//!
//! Everything is a pure function of the insertion sequence and the seed:
//! the reservoir draws come from one seeded generator consumed in
//! insertion order, and tie-breaks iterate groups in `BTreeMap` order —
//! replaying the same harvest stream reproduces the buffer bit for bit.

use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::training::TrainingSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which record field partitions the buffer into quota groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// The harvest label ([`PipelineRecord::workload`]) — tenant /
    /// workload-class quotas.
    Workload,
    /// The structural pipeline fingerprint — rare *plan shapes* keep
    /// their floor even inside one hot workload.
    Fingerprint,
}

/// Buffer configuration.
#[derive(Debug, Clone)]
pub struct BufferConfig {
    /// Hard bound on retained records.
    pub capacity: usize,
    /// Guaranteed floor per group: evictions never shrink a group holding
    /// at most this many records (groups that never grow past the quota
    /// are effectively pinned). The floors are only simultaneously
    /// satisfiable while `quota × live groups ≤ capacity`; past that
    /// point admission of a new under-quota record falls back to
    /// shrinking the largest group (the floors are mutually
    /// contradictory then) — size the capacity for the group cardinality
    /// you expect.
    pub group_quota: usize,
    /// Grouping key for the quota.
    pub group_by: GroupBy,
    /// Seed of the reservoir's random stream.
    pub seed: u64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig { capacity: 4096, group_quota: 64, group_by: GroupBy::Workload, seed: 0x1EA2 }
    }
}

/// Bounded deterministic training buffer. See the module docs for the
/// eviction policy.
#[derive(Debug)]
pub struct TrainingBuffer {
    config: BufferConfig,
    items: Vec<PipelineRecord>,
    /// Live record count per group (groups never seen are absent; groups
    /// evicted to zero keep their entry so the bookkeeping stays simple).
    counts: BTreeMap<String, usize>,
    /// Records offered so far (the reservoir's denominator).
    seen: u64,
    rng: StdRng,
}

impl TrainingBuffer {
    pub fn new(config: BufferConfig) -> TrainingBuffer {
        assert!(config.capacity > 0, "a zero-capacity buffer cannot learn");
        let rng = StdRng::seed_from_u64(config.seed);
        TrainingBuffer { config, items: Vec::new(), counts: BTreeMap::new(), seen: 0, rng }
    }

    /// Offer one record; returns whether it was retained. Deterministic
    /// given the seed and the insertion sequence.
    pub fn insert(&mut self, rec: PipelineRecord) -> bool {
        self.seen += 1;
        let group = self.key_of(&rec);
        if self.items.len() < self.config.capacity {
            *self.counts.entry(group).or_insert(0) += 1;
            self.items.push(rec);
            return true;
        }
        let incoming = self.counts.get(&group).copied().unwrap_or(0);
        if incoming < self.config.group_quota {
            // The incoming record's group is under its floor: admit it
            // unconditionally by evicting a random member of the largest
            // group **above its own floor** (ties broken towards the
            // lexicographically smallest name for determinism) — so one
            // protected group can never be shrunk to admit another. Only
            // in the pathological config where quota × live-groups
            // exceeds the capacity (every group at/below its floor) does
            // the eviction fall back to the largest group overall; the
            // floors are mutually unsatisfiable then, and admitting the
            // newest rare record is the lesser harm. If the fallback
            // victim is the incoming group itself the swap keeps counts
            // unchanged.
            let largest_above_quota = |quota: usize| {
                self.counts
                    .iter()
                    .filter(|&(_, &c)| c > quota)
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(g, _)| g.clone())
            };
            let victim_group = largest_above_quota(self.config.group_quota)
                .or_else(|| largest_above_quota(0))
                .expect("full buffer has at least one group");
            let members = self.counts[&victim_group];
            let pick = (self.rng.next_u64() % members as u64) as usize;
            let idx = self
                .items
                .iter()
                .enumerate()
                .filter(|(_, r)| self.group_matches(r, &victim_group))
                .nth(pick)
                .map(|(i, _)| i)
                .expect("group count matches membership");
            *self.counts.get_mut(&victim_group).expect("victim group exists") -= 1;
            *self.counts.entry(group).or_insert(0) += 1;
            self.items[idx] = rec;
            return true;
        }
        // Classic reservoir step over the whole stream.
        let j = (self.rng.next_u64() % self.seen) as usize;
        if j >= self.config.capacity {
            return false;
        }
        let victim_group = self.key_of(&self.items[j]);
        if victim_group != group && self.counts[&victim_group] <= self.config.group_quota {
            // Replacing would shrink a group at (or below) its floor:
            // the rare group wins, the incoming record is dropped.
            return false;
        }
        *self.counts.get_mut(&victim_group).expect("victim group exists") -= 1;
        *self.counts.entry(group).or_insert(0) += 1;
        self.items[j] = rec;
        true
    }

    fn key_of(&self, rec: &PipelineRecord) -> String {
        match self.config.group_by {
            GroupBy::Workload => rec.workload.clone(),
            GroupBy::Fingerprint => rec.fingerprint.clone(),
        }
    }

    /// Allocation-free membership test (the eviction scan runs it over up
    /// to `capacity` records per insert).
    fn group_matches(&self, rec: &PipelineRecord, group: &str) -> bool {
        match self.config.group_by {
            GroupBy::Workload => rec.workload == group,
            GroupBy::Fingerprint => rec.fingerprint == group,
        }
    }

    /// Retained records (insertion/replacement order; not meaningful as a
    /// time series).
    pub fn records(&self) -> &[PipelineRecord] {
        &self.items
    }

    /// The retained records as a [`TrainingSet`].
    pub fn training_set(&self) -> TrainingSet {
        TrainingSet { records: self.items.clone() }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Records offered over the buffer's lifetime (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Live record count of one group (0 for groups never seen).
    pub fn group_count(&self, group: &str) -> usize {
        self.counts.get(group).copied().unwrap_or(0)
    }

    /// Groups currently holding at least one record, ascending.
    pub fn groups(&self) -> Vec<&str> {
        self.counts.iter().filter(|&(_, &c)| c > 0).map(|(g, _)| g.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_core::features::FeatureSchema;

    fn rec(workload: &str, fingerprint: &str, i: usize) -> PipelineRecord {
        let dims = FeatureSchema::get().len();
        PipelineRecord {
            workload: workload.into(),
            query_idx: i,
            pipeline_id: 0,
            features: vec![i as f32; dims],
            errors_l1: vec![0.1; 8],
            errors_l2: vec![0.1; 8],
            total_getnext: 10,
            weight: 1.0,
            n_obs: 10,
            fingerprint: fingerprint.into(),
            oracle_l1: [0.0; 2],
            oracle_l2: [0.0; 2],
        }
    }

    fn cfg(capacity: usize, quota: usize) -> BufferConfig {
        BufferConfig { capacity, group_quota: quota, group_by: GroupBy::Workload, seed: 7 }
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut buf = TrainingBuffer::new(cfg(32, 4));
        for i in 0..500 {
            buf.insert(rec("hot", "scan|t", i));
            assert!(buf.len() <= 32);
        }
        assert_eq!(buf.len(), 32);
        assert_eq!(buf.seen(), 500);
    }

    #[test]
    fn heavy_traffic_cannot_evict_a_rare_group() {
        let mut buf = TrainingBuffer::new(cfg(64, 8));
        // Seed the rare group with 5 records (below the quota of 8).
        for i in 0..5 {
            buf.insert(rec("rare", "seek|s", i));
        }
        // Flood with three orders of magnitude more hot traffic.
        for i in 0..5000 {
            buf.insert(rec("hot", "scan|t", i));
        }
        assert_eq!(buf.group_count("rare"), 5, "rare group must keep its floor");
        assert_eq!(buf.len(), 64);
        assert_eq!(buf.group_count("hot"), 59);
    }

    #[test]
    fn a_late_rare_group_still_gets_admitted() {
        let mut buf = TrainingBuffer::new(cfg(32, 4));
        for i in 0..1000 {
            buf.insert(rec("hot", "scan|t", i));
        }
        // Buffer is full of hot records; a new group must still enter.
        for i in 0..3 {
            assert!(buf.insert(rec("late", "sort|u", i)), "under-quota insert is unconditional");
        }
        assert_eq!(buf.group_count("late"), 3);
        assert_eq!(buf.len(), 32);
    }

    #[test]
    fn under_quota_admission_spares_other_protected_groups() {
        // Buffer full with one huge group and one small protected group;
        // admitting records of a third group must always evict from the
        // huge (above-quota) group, never from the protected one.
        let mut buf = TrainingBuffer::new(cfg(48, 8));
        for i in 0..6 {
            buf.insert(rec("small", "seek|s", i));
        }
        for i in 0..500 {
            buf.insert(rec("huge", "scan|t", i));
        }
        assert_eq!(buf.group_count("small"), 6);
        for i in 0..8 {
            assert!(buf.insert(rec("third", "sort|u", i)));
            assert_eq!(buf.group_count("small"), 6, "protected group must not fund admission");
        }
        assert_eq!(buf.group_count("third"), 8);
        assert_eq!(buf.len(), 48);
    }

    #[test]
    fn deterministic_replay() {
        let stream: Vec<PipelineRecord> =
            (0..800).map(|i| rec(if i % 17 == 0 { "rare" } else { "hot" }, "scan|t", i)).collect();
        let run = |seed: u64| {
            let mut buf = TrainingBuffer::new(BufferConfig { seed, ..cfg(48, 6) });
            for r in &stream {
                buf.insert(r.clone());
            }
            buf.records().iter().map(|r| (r.workload.clone(), r.query_idx)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same stream => same buffer");
        assert_ne!(run(3), run(4), "the reservoir really is random across seeds");
    }

    #[test]
    fn fingerprint_grouping_protects_rare_plan_shapes() {
        let mut buf = TrainingBuffer::new(BufferConfig {
            capacity: 40,
            group_quota: 4,
            group_by: GroupBy::Fingerprint,
            seed: 1,
        });
        for i in 0..3 {
            buf.insert(rec("w", "merge-sort|a,b", i));
        }
        for i in 0..2000 {
            buf.insert(rec("w", "scan|t", i));
        }
        assert_eq!(buf.group_count("merge-sort|a,b"), 3);
    }

    #[test]
    fn zero_capacity_is_refused() {
        let result = std::panic::catch_unwind(|| TrainingBuffer::new(cfg(0, 1)));
        assert!(result.is_err());
    }
}
