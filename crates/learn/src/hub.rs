//! The versioned selector slot: one atomic place where the trainer
//! publishes and consumers subscribe.
//!
//! [`SelectorHub`] is the epoch authority of the learning loop: the
//! trainer publishes promoted models here, and deployment glue forwards
//! each publication into the serving side
//! ([`prosel_monitor::MonitorService::swap_selector`] /
//! [`prosel_monitor::ProgressMonitor::swap_selector`]), which applies the
//! same registration-time-capture semantics per query. Out-of-band
//! consumers — a persistence job shipping
//! [`EstimatorSelector::to_text`] blobs, a second service joining late —
//! read [`SelectorHub::current`] to catch up to the latest epoch without
//! replaying the harvest stream.
//!
//! For followers that do **not** share the trainer's address space, the
//! hub speaks the fleet publication protocol: [`SelectorHub::publish_to`]
//! frames the current `(epoch, checksum, selector-text)` onto any
//! [`std::io::Write`] (a pipe, a socket, an append-only file), and the
//! [`crate::subscriber::SelectorSubscriber`] on the other end decodes,
//! verifies and installs it — rejecting torn, corrupted or stale frames
//! with typed errors. See [`crate::subscriber`] for the frame grammar.

use prosel_core::selection::EstimatorSelector;
use prosel_core::textio::fnv64;
use prosel_obs::{Counter, MetricsRegistry};
use std::sync::{Arc, OnceLock, RwLock};

/// A reference-counted, epoch-versioned selector slot. Cloning the hub's
/// `Arc` wrapper is the intended sharing pattern; reads are lock-held only
/// long enough to clone an `Arc`.
pub struct SelectorHub {
    inner: RwLock<(u64, Arc<EstimatorSelector>)>,
    /// `hub_publications_total` handle, once [`Self::observe`] bound one.
    publications: OnceLock<Arc<Counter>>,
}

impl SelectorHub {
    /// A hub holding `initial` at epoch 0 (matching a monitor that has
    /// never seen a swap).
    pub fn new(initial: Arc<EstimatorSelector>) -> SelectorHub {
        SelectorHub { inner: RwLock::new((0, initial)), publications: OnceLock::new() }
    }

    /// Count every [`Self::publish`] into `registry` as
    /// `hub_publications_total`. One-shot: later calls on an already
    /// observed hub are ignored.
    pub fn observe(&self, registry: &MetricsRegistry) {
        let _ = self.publications.set(registry.counter("hub_publications_total"));
    }

    /// The latest `(epoch, selector)` pair.
    pub fn current(&self) -> (u64, Arc<EstimatorSelector>) {
        let guard = self.inner.read().expect("hub poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// The latest selector alone.
    pub fn selector(&self) -> Arc<EstimatorSelector> {
        self.current().1
    }

    /// The latest epoch alone.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("hub poisoned").0
    }

    /// Publish a new selector; returns its epoch (previous + 1).
    pub fn publish(&self, selector: Arc<EstimatorSelector>) -> u64 {
        let mut guard = self.inner.write().expect("hub poisoned");
        guard.0 += 1;
        guard.1 = selector;
        if let Some(counter) = self.publications.get() {
            counter.inc();
        }
        guard.0
    }

    /// Encode one `(epoch, checksum, selector-text)` publication frame.
    ///
    /// The frame grammar (see [`crate::subscriber`] for the decoder's
    /// rejection rules):
    ///
    /// ```text
    /// prosel-publication v1
    /// epoch <n> bytes <len> checksum <fnv64 hex>
    /// <exactly len bytes of selector text>
    /// endpublication
    /// ```
    ///
    /// The byte length makes truncation detectable without trusting the
    /// payload's own structure, and the FNV-1a checksum covers the payload
    /// bytes so corruption inside an otherwise well-formed frame is caught
    /// before any parse is attempted.
    pub fn encode_frame(epoch: u64, selector: &EstimatorSelector) -> String {
        let payload = selector.to_text();
        let mut out = String::with_capacity(payload.len() + 96);
        out.push_str("prosel-publication v1\n");
        out.push_str(&format!(
            "epoch {epoch} bytes {} checksum {:016x}\n",
            payload.len(),
            fnv64(payload.as_bytes())
        ));
        out.push_str(&payload);
        out.push_str("endpublication\n");
        out
    }

    /// Frame the hub's current `(epoch, selector)` onto a byte stream.
    ///
    /// One call writes one complete frame; a trainer loop calls this after
    /// every promotion and N subscribers replay the stream in order. The
    /// snapshot of `(epoch, selector)` is taken atomically, so a publish
    /// racing this call yields either the old frame or the new one, never
    /// a blend.
    pub fn publish_to(&self, sink: &mut dyn std::io::Write) -> std::io::Result<u64> {
        let (epoch, selector) = self.current();
        sink.write_all(Self::encode_frame(epoch, &selector).as_bytes())?;
        sink.flush()?;
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_core::pipeline_runs::PipelineRecord;
    use prosel_core::selection::SelectorConfig;
    use prosel_core::training::TrainingSet;
    use prosel_estimators::EstimatorKind;
    use prosel_mart::BoostParams;

    fn tiny_selector() -> EstimatorSelector {
        let dims = prosel_core::features::FeatureSchema::get().len();
        let records: Vec<PipelineRecord> = (0..20)
            .map(|i| PipelineRecord {
                workload: "t".into(),
                query_idx: i,
                pipeline_id: 0,
                features: vec![(i % 3) as f32; dims],
                errors_l1: vec![0.2; 8],
                errors_l2: vec![0.2; 8],
                total_getnext: 5,
                weight: 1.0,
                n_obs: 8,
                fingerprint: "scan|t".into(),
                oracle_l1: [0.0; 2],
                oracle_l2: [0.0; 2],
            })
            .collect();
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            boost: BoostParams { iterations: 3, ..BoostParams::fast() },
            ..SelectorConfig::default()
        };
        EstimatorSelector::train(&TrainingSet::from_records(&records), &cfg)
    }

    #[test]
    fn epochs_advance_and_readers_see_the_latest() {
        let a = Arc::new(tiny_selector());
        let hub = SelectorHub::new(Arc::clone(&a));
        assert_eq!(hub.epoch(), 0);
        assert!(Arc::ptr_eq(&hub.selector(), &a));
        let b = Arc::new(tiny_selector());
        assert_eq!(hub.publish(Arc::clone(&b)), 1);
        let (epoch, current) = hub.current();
        assert_eq!(epoch, 1);
        assert!(Arc::ptr_eq(&current, &b));
        assert_eq!(hub.publish(a), 2);
    }

    #[test]
    fn concurrent_publishes_serialize() {
        let hub = Arc::new(SelectorHub::new(Arc::new(tiny_selector())));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let hub = Arc::clone(&hub);
                scope.spawn(move || {
                    for _ in 0..25 {
                        hub.publish(hub.selector());
                    }
                });
            }
        });
        assert_eq!(hub.epoch(), 100);
    }
}
