//! Crash-safe checkpoints for the learning loop.
//!
//! A restarted trainer that loses its [`crate::TrainingBuffer`] loses
//! precisely the records the quota floors fought to keep — the rare
//! groups that took the longest to collect. The checkpoint codec
//! serializes the **whole** [`crate::OnlineLearner`] — configuration,
//! retained records with their admission stamps, the reservoir's offer
//! and draw counters, the validation slice, lifetime stats and the
//! current selector — as a versioned, checksummed text artifact in the
//! same strict style as `prosel_mart::model_io`:
//!
//! ```text
//! prosel-checkpoint v1
//! bytes <len> checksum <fnv64 hex>
//! <exactly len bytes of body>
//! endcheckpoint
//! ```
//!
//! The body is line-oriented (config / buffer / counters / stats lines,
//! then the buffered and validation records with floats as IEEE-754 bit
//! patterns, then the selector text embedded by line count). Truncation,
//! trailing garbage, field drift and checksum mismatches are all hard
//! errors — a torn checkpoint can never restore as a *different* learner.
//! Restore is **bit-identical**: the reservoir generator is re-seeded and
//! fast-forwarded by the recorded draw count, so the restored learner's
//! next insert, next holdout routing and next retrain all replay exactly
//! what the checkpointed one would have done.
//!
//! Entry points: [`crate::OnlineLearner::checkpoint`] and
//! [`crate::OnlineLearner::restore`]. [`crate::Trainer::spawn_with_checkpoints`]
//! emits these on a query cadence from the background thread.

use crate::buffer::{BufferConfig, DecayPolicy, GroupBy};
use crate::learner::{LearnConfig, LearnStats};
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::textio::{
    f32_from_hex, f32_to_hex, f64_from_hex, f64_to_hex, fnv64, parse, LineReader,
};
use prosel_mart::{BoostParams, TreeParams};
use std::fmt::Write as _;

/// A refused checkpoint: the message names the offending line or field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint rejected: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

impl From<String> for CheckpointError {
    fn from(msg: String) -> Self {
        CheckpointError(msg)
    }
}

/// Everything the codec moves in and out of an [`crate::OnlineLearner`].
/// Built and consumed by the learner itself (its fields stay private);
/// the codec only sees this flat view.
pub(crate) struct LearnerParts {
    pub config: LearnConfig,
    /// Boost parameters of the *current selector* — `from_text` returns
    /// defaults, so restore must re-seat these for post-restore retrains
    /// to replay exactly.
    pub boost: BoostParams,
    pub records: Vec<PipelineRecord>,
    pub stamps: Vec<u64>,
    pub seen: u64,
    pub draws: u64,
    pub validation: Vec<PipelineRecord>,
    pub selector_text: String,
    pub record_counter: usize,
    pub since_retrain: usize,
    pub rounds: u64,
    pub stats: LearnStats,
}

fn group_by_str(g: GroupBy) -> &'static str {
    match g {
        GroupBy::Workload => "workload",
        GroupBy::Fingerprint => "fingerprint",
    }
}

fn group_by_parse(s: &str) -> Result<GroupBy, String> {
    match s {
        "workload" => Ok(GroupBy::Workload),
        "fingerprint" => Ok(GroupBy::Fingerprint),
        other => Err(format!("group_by: unknown value {other:?}")),
    }
}

fn decay_str(d: DecayPolicy) -> String {
    match d {
        DecayPolicy::None => "none".into(),
        DecayPolicy::MaxAge { max_age } => format!("maxage:{max_age}"),
    }
}

fn decay_parse(s: &str) -> Result<DecayPolicy, String> {
    if s == "none" {
        return Ok(DecayPolicy::None);
    }
    match s.strip_prefix("maxage:") {
        Some(n) => Ok(DecayPolicy::MaxAge { max_age: parse("decay max_age", n)? }),
        None => Err(format!("decay: unknown policy {s:?}")),
    }
}

fn push_f32s(out: &mut String, label: &str, values: &[f32]) {
    let _ = write!(out, "{label} {}", values.len());
    for v in values {
        let _ = write!(out, " {}", f32_to_hex(*v));
    }
    out.push('\n');
}

fn read_f32s(r: &mut LineReader<'_>, label: &str) -> Result<Vec<f32>, String> {
    let line = r.next_line()?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(label) {
        return Err(format!(
            "line {}: expected a {label:?} vector line, got {line:?}",
            r.line_no()
        ));
    }
    let n: usize = parse(label, parts.next().ok_or(format!("{label}: missing count"))?)?;
    let values: Vec<f32> = parts.map(f32_from_hex).collect::<Result<_, _>>()?;
    if values.len() != n {
        return Err(format!("{label}: declared {n} values, found {}", values.len()));
    }
    Ok(values)
}

fn push_record(out: &mut String, rec: &PipelineRecord) {
    let _ = writeln!(
        out,
        "record query {} pipeline {} getnext {} nobs {} weight {}",
        rec.query_idx,
        rec.pipeline_id,
        rec.total_getnext,
        rec.n_obs,
        f64_to_hex(rec.weight)
    );
    // Rest-of-line strings: labels and fingerprints may contain spaces
    // but never newlines (they come from harvest labels / plan shapes).
    let _ = writeln!(out, "workload {}", rec.workload);
    let _ = writeln!(out, "fingerprint {}", rec.fingerprint);
    push_f32s(out, "features", &rec.features);
    push_f32s(out, "l1", &rec.errors_l1);
    push_f32s(out, "l2", &rec.errors_l2);
    let _ = writeln!(
        out,
        "oracle {} {} {} {}",
        f32_to_hex(rec.oracle_l1[0]),
        f32_to_hex(rec.oracle_l1[1]),
        f32_to_hex(rec.oracle_l2[0]),
        f32_to_hex(rec.oracle_l2[1])
    );
    out.push_str("endrecord\n");
}

fn read_rest_of_line<'a>(r: &mut LineReader<'a>, label: &str) -> Result<&'a str, String> {
    let line = r.next_line()?;
    line.strip_prefix(label)
        .and_then(|rest| rest.strip_prefix(' ').or(if rest.is_empty() { Some("") } else { None }))
        .ok_or_else(|| format!("line {}: expected a {label:?} line, got {line:?}", r.line_no()))
}

/// Parse `tag k1 v1 k2 v2 ...` with the tag and key names (and their
/// order) enforced — the same field-drift discipline as
/// [`LineReader::fields`], for lines that open with a section tag.
fn tagged_fields<'a>(
    r: &mut LineReader<'a>,
    tag: &str,
    keys: &[&str],
) -> Result<Vec<&'a str>, String> {
    let line = r.next_line()?;
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts.len() != 1 + 2 * keys.len() || parts[0] != tag {
        return Err(format!(
            "line {}: expected `{tag} {}`, got {line:?}",
            r.line_no(),
            keys.iter().map(|k| format!("{k} <v>")).collect::<Vec<_>>().join(" ")
        ));
    }
    let mut values = Vec::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        if parts[1 + 2 * i] != *key {
            return Err(format!(
                "line {}: {tag} field {} must be {key:?}, got {:?} — field drift",
                r.line_no(),
                i + 1,
                parts[1 + 2 * i]
            ));
        }
        values.push(parts[2 + 2 * i]);
    }
    Ok(values)
}

fn read_record(r: &mut LineReader<'_>) -> Result<PipelineRecord, String> {
    let head = tagged_fields(r, "record", &["query", "pipeline", "getnext", "nobs", "weight"])?;
    let query_idx: usize = parse("query", head[0])?;
    let pipeline_id: usize = parse("pipeline", head[1])?;
    let total_getnext: u64 = parse("getnext", head[2])?;
    let n_obs: usize = parse("nobs", head[3])?;
    let weight = f64_from_hex(head[4])?;
    let workload = read_rest_of_line(r, "workload")?.to_string();
    let fingerprint = read_rest_of_line(r, "fingerprint")?.to_string();
    let features = read_f32s(r, "features")?;
    let errors_l1 = read_f32s(r, "l1")?;
    let errors_l2 = read_f32s(r, "l2")?;
    let oline = r.next_line()?;
    let oparts: Vec<&str> = oline.split_whitespace().collect();
    if oparts.len() != 5 || oparts[0] != "oracle" {
        return Err(format!("line {}: bad oracle line: {oline:?}", r.line_no()));
    }
    let o: Vec<f32> = oparts[1..].iter().map(|s| f32_from_hex(s)).collect::<Result<_, _>>()?;
    r.expect("endrecord")?;
    Ok(PipelineRecord {
        workload,
        query_idx,
        pipeline_id,
        features,
        errors_l1,
        errors_l2,
        total_getnext,
        weight,
        n_obs,
        fingerprint,
        oracle_l1: [o[0], o[1]],
        oracle_l2: [o[2], o[3]],
    })
}

pub(crate) fn encode(parts: &LearnerParts) -> String {
    let mut body = String::new();
    let c = &parts.config;
    let _ = writeln!(
        body,
        "config retrain_every {} holdout_every {} validation_cap {} min_records {} \
         warm_trees {} max_trees {} promote_margin {} seed {}",
        c.retrain_every,
        c.holdout_every,
        c.validation_cap,
        c.min_records,
        c.warm_trees,
        c.max_trees,
        f64_to_hex(c.promote_margin),
        c.seed
    );
    let b = &c.buffer;
    let _ = writeln!(
        body,
        "buffer capacity {} group_quota {} group_by {} seed {} decay {}",
        b.capacity,
        b.group_quota,
        group_by_str(b.group_by),
        b.seed,
        decay_str(b.decay)
    );
    let bp = &parts.boost;
    let _ = writeln!(
        body,
        "boost iterations {} shrinkage {} subsample {} colsample {} max_leaves {} \
         min_samples_leaf {} seed {}",
        bp.iterations,
        f64_to_hex(bp.shrinkage),
        f64_to_hex(bp.subsample),
        f64_to_hex(bp.colsample),
        bp.tree.max_leaves,
        bp.tree.min_samples_leaf,
        bp.seed
    );
    let _ = writeln!(
        body,
        "counters seen {} draws {} record_counter {} since_retrain {} rounds {}",
        parts.seen, parts.draws, parts.record_counter, parts.since_retrain, parts.rounds
    );
    let s = &parts.stats;
    let _ = writeln!(
        body,
        "stats harvested_queries {} harvested_records {} retrains {} promotions {} \
         rejections {} skipped {}",
        s.harvested_queries, s.harvested_records, s.retrains, s.promotions, s.rejections, s.skipped
    );
    let _ = writeln!(body, "records {}", parts.records.len());
    for (rec, stamp) in parts.records.iter().zip(&parts.stamps) {
        let _ = writeln!(body, "stamp {stamp}");
        push_record(&mut body, rec);
    }
    let _ = writeln!(body, "validation {}", parts.validation.len());
    for rec in &parts.validation {
        push_record(&mut body, rec);
    }
    let selector_lines = parts.selector_text.lines().count();
    let _ = writeln!(body, "selector lines {selector_lines}");
    body.push_str(&parts.selector_text);
    if !parts.selector_text.ends_with('\n') {
        body.push('\n');
    }
    format!(
        "prosel-checkpoint v1\nbytes {} checksum {:016x}\n{body}endcheckpoint\n",
        body.len(),
        fnv64(body.as_bytes())
    )
}

pub(crate) fn decode(text: &str) -> Result<LearnerParts, CheckpointError> {
    // Envelope: header line, length+checksum line, exactly `len` body
    // bytes, terminator, nothing else.
    let after_header = text
        .strip_prefix("prosel-checkpoint v1\n")
        .ok_or_else(|| CheckpointError("missing \"prosel-checkpoint v1\" header".into()))?;
    let meta_end = after_header
        .find('\n')
        .ok_or_else(|| CheckpointError("truncated before the bytes/checksum line".into()))?;
    let meta = &after_header[..meta_end];
    let mparts: Vec<&str> = meta.split_whitespace().collect();
    if mparts.len() != 4 || mparts[0] != "bytes" || mparts[2] != "checksum" {
        return Err(CheckpointError(format!(
            "bad meta line (want `bytes <len> checksum <hex>`): {meta:?}"
        )));
    }
    let len: usize = parse("bytes", mparts[1])?;
    let declared = u64::from_str_radix(mparts[3], 16)
        .map_err(|e| CheckpointError(format!("checksum {:?}: {e}", mparts[3])))?;
    let rest = &after_header[meta_end + 1..];
    if rest.len() < len {
        return Err(CheckpointError(format!(
            "truncated body: declared {len} bytes, only {} remain",
            rest.len()
        )));
    }
    let body = &rest[..len];
    let computed = fnv64(body.as_bytes());
    if computed != declared {
        return Err(CheckpointError(format!(
            "checksum mismatch: declared {declared:016x}, computed {computed:016x}"
        )));
    }
    let mut tail = LineReader::new(&rest[len..]);
    tail.expect("endcheckpoint")?;
    tail.finish()?;

    // Body: strict line-by-line, every section tag and key validated.
    let mut r = LineReader::new(body);
    let cv = tagged_fields(
        &mut r,
        "config",
        &[
            "retrain_every",
            "holdout_every",
            "validation_cap",
            "min_records",
            "warm_trees",
            "max_trees",
            "promote_margin",
            "seed",
        ],
    )?;
    let bv =
        tagged_fields(&mut r, "buffer", &["capacity", "group_quota", "group_by", "seed", "decay"])?;
    let buffer = BufferConfig {
        capacity: parse("capacity", bv[0])?,
        group_quota: parse("group_quota", bv[1])?,
        group_by: group_by_parse(bv[2])?,
        seed: parse("buffer seed", bv[3])?,
        decay: decay_parse(bv[4])?,
    };
    let config = LearnConfig {
        buffer,
        retrain_every: parse("retrain_every", cv[0])?,
        holdout_every: parse("holdout_every", cv[1])?,
        validation_cap: parse("validation_cap", cv[2])?,
        min_records: parse("min_records", cv[3])?,
        warm_trees: parse("warm_trees", cv[4])?,
        max_trees: parse("max_trees", cv[5])?,
        promote_margin: f64_from_hex(cv[6])?,
        seed: parse("seed", cv[7])?,
    };
    let pv = tagged_fields(
        &mut r,
        "boost",
        &[
            "iterations",
            "shrinkage",
            "subsample",
            "colsample",
            "max_leaves",
            "min_samples_leaf",
            "seed",
        ],
    )?;
    let boost = BoostParams {
        iterations: parse("iterations", pv[0])?,
        shrinkage: f64_from_hex(pv[1])?,
        subsample: f64_from_hex(pv[2])?,
        colsample: f64_from_hex(pv[3])?,
        tree: TreeParams {
            max_leaves: parse("max_leaves", pv[4])?,
            min_samples_leaf: parse("min_samples_leaf", pv[5])?,
        },
        seed: parse("boost seed", pv[6])?,
    };
    let kv = tagged_fields(
        &mut r,
        "counters",
        &["seen", "draws", "record_counter", "since_retrain", "rounds"],
    )?;
    let seen: u64 = parse("seen", kv[0])?;
    let draws: u64 = parse("draws", kv[1])?;
    let record_counter: usize = parse("record_counter", kv[2])?;
    let since_retrain: usize = parse("since_retrain", kv[3])?;
    let rounds: u64 = parse("rounds", kv[4])?;
    let sv = tagged_fields(
        &mut r,
        "stats",
        &[
            "harvested_queries",
            "harvested_records",
            "retrains",
            "promotions",
            "rejections",
            "skipped",
        ],
    )?;
    let stats = LearnStats {
        harvested_queries: parse("harvested_queries", sv[0])?,
        harvested_records: parse("harvested_records", sv[1])?,
        retrains: parse("retrains", sv[2])?,
        promotions: parse("promotions", sv[3])?,
        rejections: parse("rejections", sv[4])?,
        skipped: parse("skipped", sv[5])?,
    };
    let n_records: usize = parse("records", r.fields(&["records"])?[0])?;
    let mut records = Vec::with_capacity(n_records);
    let mut stamps = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        stamps.push(parse("stamp", r.fields(&["stamp"])?[0])?);
        records.push(read_record(&mut r)?);
    }
    let n_validation: usize = parse("validation", r.fields(&["validation"])?[0])?;
    let mut validation = Vec::with_capacity(n_validation);
    for _ in 0..n_validation {
        validation.push(read_record(&mut r)?);
    }
    let n_lines: usize =
        parse("selector lines", tagged_fields(&mut r, "selector", &["lines"])?[0])?;
    let mut selector_text = String::new();
    for _ in 0..n_lines {
        selector_text.push_str(r.next_line()?);
        selector_text.push('\n');
    }
    r.finish()?;
    Ok(LearnerParts {
        config,
        boost,
        records,
        stamps,
        seen,
        draws,
        validation,
        selector_text,
        record_counter,
        since_retrain,
        rounds,
        stats,
    })
}
