//! The deterministic retraining core.
//!
//! [`OnlineLearner`] is the whole learning policy as a synchronous state
//! machine: absorb harvested queries into the [`TrainingBuffer`] (with a
//! deterministic holdout split), retrain at a configured cadence, and
//! promote the candidate only when it is no worse than the incumbent on
//! the held-out validation slice (**guarded promotion** — the production
//! guard against a feedback round that happens to produce a worse model;
//! the worst case of a feedback round is therefore "no change", never a
//! regression on the guard set). [`crate::Trainer`] runs this same core
//! on a background thread; tests and experiments drive it inline, where
//! its bit-determinism (pure function of the harvest sequence and the
//! seeds) makes whole learning loops replayable.

use crate::buffer::{BufferConfig, TrainingBuffer};
use crate::checkpoint::{self, CheckpointError, LearnerParts};
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_mart::BoostParams;
use prosel_monitor::HarvestedQuery;
use prosel_obs::{Counter, Gauge, Histogram, MetricsRegistry, ObsEvent, TraceRing};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Registry handles the learner publishes into when observed (see
/// [`OnlineLearner::observe`]). Retrains are rare and expensive relative
/// to a histogram record, so retrain timing is always on — no sampling
/// stride here.
struct LearnObs {
    /// `learn_buffer_occupancy` — retained training records (gauge).
    occupancy: Arc<Gauge>,
    /// `learn_decay_evictions_total` — records aged out by decay.
    evictions: Arc<Counter>,
    /// `learn_retrain_ns` — wall time per retrain attempt that fit.
    retrain_ns: Arc<Histogram>,
    /// `learn_holdout_l1` — candidate L1 on the validation slice (gauge).
    holdout_l1: Arc<Gauge>,
    /// `learn_retrains_total` / `learn_promotions_total` /
    /// `learn_rejections_total` / `learn_skipped_total` — mirrors of
    /// [`LearnStats`] as scrapeable counters.
    retrains: Arc<Counter>,
    promotions: Arc<Counter>,
    rejections: Arc<Counter>,
    skipped: Arc<Counter>,
    /// Control-plane ring receiving `RetrainPromoted` / `RetrainHeld`.
    ring: TraceRing,
}

impl LearnObs {
    fn new(registry: &MetricsRegistry, ring: TraceRing) -> LearnObs {
        LearnObs {
            occupancy: registry.gauge("learn_buffer_occupancy"),
            evictions: registry.counter("learn_decay_evictions_total"),
            retrain_ns: registry.histogram("learn_retrain_ns"),
            holdout_l1: registry.gauge("learn_holdout_l1"),
            retrains: registry.counter("learn_retrains_total"),
            promotions: registry.counter("learn_promotions_total"),
            rejections: registry.counter("learn_rejections_total"),
            skipped: registry.counter("learn_skipped_total"),
            ring,
        }
    }
}

/// Learning-loop configuration.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Training-buffer policy (capacity, quotas, reservoir seed).
    pub buffer: BufferConfig,
    /// Retrain after this many harvested queries (0 = only when
    /// [`OnlineLearner::retrain`] is called explicitly).
    pub retrain_every: usize,
    /// Every k-th harvested record is routed to the validation slice
    /// instead of the buffer (0 disables the holdout — promotion is then
    /// unguarded).
    pub holdout_every: usize,
    /// Bound on the validation slice (oldest records drop out first).
    pub validation_cap: usize,
    /// Skip retraining while the buffer holds fewer records than this.
    pub min_records: usize,
    /// Warm-start depth: additional boosting rounds per candidate model
    /// and feedback round ([`EstimatorSelector::retrain_from`]); 0 refits
    /// each round from scratch on the buffer.
    pub warm_trees: usize,
    /// Ensemble-size ceiling per candidate model: when a warm start would
    /// push any model past this many trees, the round refits from scratch
    /// on the buffer instead — without it, a long-lived loop that keeps
    /// promoting would grow its ensembles (memory **and** per-selection
    /// predict cost) linearly forever. 0 disables the cap.
    pub max_trees: usize,
    /// Guard margin: a candidate is promoted only when its validation L1
    /// beats the incumbent's by at least this much. 0.0 promotes on ties;
    /// a small positive margin damps promotion churn when the validation
    /// slice is reused across many rounds (each promotion *selects on*
    /// that slice, so tie-promotions compound selection bias).
    pub promote_margin: f64,
    /// Seed of the per-round training streams.
    pub seed: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            buffer: BufferConfig::default(),
            retrain_every: 32,
            holdout_every: 5,
            validation_cap: 1024,
            min_records: 64,
            warm_trees: 40,
            max_trees: 600,
            promote_margin: 0.0,
            seed: 0x5EED,
        }
    }
}

/// Counters over the learner's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnStats {
    pub harvested_queries: usize,
    pub harvested_records: usize,
    /// Retrain attempts that actually fit a candidate.
    pub retrains: usize,
    /// Candidates promoted to current.
    pub promotions: usize,
    /// Candidates rejected by the validation guard.
    pub rejections: usize,
    /// Retrain attempts skipped for lack of buffered records.
    pub skipped: usize,
}

/// What one [`OnlineLearner::retrain`] call did.
#[derive(Debug, Clone, Copy)]
pub struct RetrainOutcome {
    /// Did the candidate replace the incumbent?
    pub promoted: bool,
    /// Buffered records the candidate was fit on (0 ⇒ skipped).
    pub trained_on: usize,
    /// Held-out records behind the promotion decision.
    pub validation: usize,
    /// Candidate's mean chosen-estimator L1 on the validation slice
    /// (NaN when the guard was disabled or starved).
    pub candidate_l1: f64,
    /// Incumbent's mean chosen-estimator L1 on the same slice.
    pub incumbent_l1: f64,
}

/// Deterministic online-learning core. See the module docs.
pub struct OnlineLearner {
    config: LearnConfig,
    buffer: TrainingBuffer,
    validation: VecDeque<prosel_core::pipeline_runs::PipelineRecord>,
    current: Arc<EstimatorSelector>,
    /// Harvested records ever routed (drives the holdout split).
    record_counter: usize,
    /// Harvested queries since the last retrain attempt.
    since_retrain: usize,
    /// Completed retrain attempts (seeds each round's subsample stream).
    rounds: u64,
    stats: LearnStats,
    /// Metric handles + trace ring, when [`Self::observe`] attached them.
    obs: Option<LearnObs>,
}

impl OnlineLearner {
    /// A learner that starts serving (and warm-starting from) `initial`.
    pub fn new(initial: Arc<EstimatorSelector>, config: LearnConfig) -> OnlineLearner {
        OnlineLearner {
            buffer: TrainingBuffer::new(config.buffer.clone()),
            config,
            validation: VecDeque::new(),
            current: initial,
            record_counter: 0,
            since_retrain: 0,
            rounds: 0,
            stats: LearnStats::default(),
            obs: None,
        }
    }

    /// Publish the learner's gauges, counters and retrain-latency
    /// histogram into `registry` (names `learn_*`; see the README's
    /// metric inventory) and route retrain decisions into `ring` as
    /// [`ObsEvent::RetrainPromoted`] / [`ObsEvent::RetrainHeld`].
    ///
    /// Observation is deliberately outside the checkpoint codec:
    /// [`Self::restore`] returns an unobserved learner, and re-attaching
    /// here restarts the gauges from live state (determinism of the
    /// learning replay is untouched either way).
    pub fn observe(&mut self, registry: &MetricsRegistry, ring: TraceRing) {
        let obs = LearnObs::new(registry, ring);
        obs.occupancy.set(self.buffer.len() as f64);
        obs.evictions.reset(self.buffer.evicted());
        obs.retrains.reset(self.stats.retrains as u64);
        obs.promotions.reset(self.stats.promotions as u64);
        obs.rejections.reset(self.stats.rejections as u64);
        obs.skipped.reset(self.stats.skipped as u64);
        self.obs = Some(obs);
    }

    /// The trace ring attached via [`Self::observe`], if any. The
    /// background [`crate::Trainer`] emits its checkpoint events here.
    pub fn obs_ring(&self) -> Option<&TraceRing> {
        self.obs.as_ref().map(|o| &o.ring)
    }

    /// The selector currently considered best (the one to serve).
    pub fn current(&self) -> Arc<EstimatorSelector> {
        Arc::clone(&self.current)
    }

    /// Read access to the training buffer.
    pub fn buffer(&self) -> &TrainingBuffer {
        &self.buffer
    }

    /// Held-out validation records currently retained.
    pub fn validation_len(&self) -> usize {
        self.validation.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LearnStats {
        self.stats
    }

    /// Harvested queries absorbed since the last retrain attempt.
    pub fn pending(&self) -> usize {
        self.since_retrain
    }

    /// Absorb one harvested query: its records are routed (deterministic
    /// k-th-record split) into the validation slice or the training
    /// buffer.
    pub fn absorb(&mut self, harvest: &HarvestedQuery) {
        self.stats.harvested_queries += 1;
        self.since_retrain += 1;
        for rec in &harvest.records {
            self.record_counter += 1;
            self.stats.harvested_records += 1;
            let holdout = self.config.holdout_every > 0
                && self.record_counter.is_multiple_of(self.config.holdout_every);
            if holdout {
                self.validation.push_back(rec.clone());
                while self.validation.len() > self.config.validation_cap.max(1) {
                    self.validation.pop_front();
                }
            } else {
                self.buffer.insert(rec.clone());
            }
        }
        if let Some(obs) = &self.obs {
            obs.occupancy.set(self.buffer.len() as f64);
            obs.evictions.reset(self.buffer.evicted());
        }
    }

    /// Has the retrain cadence elapsed?
    pub fn due(&self) -> bool {
        self.config.retrain_every > 0 && self.since_retrain >= self.config.retrain_every
    }

    /// [`Self::absorb`], then [`Self::retrain`] if the cadence elapsed —
    /// the one-call form background trainers loop on.
    pub fn absorb_and_maybe_retrain(&mut self, harvest: &HarvestedQuery) -> Option<RetrainOutcome> {
        self.absorb(harvest);
        if self.due() {
            Some(self.retrain())
        } else {
            None
        }
    }

    /// Serialize the learner's complete state — config, buffer (records,
    /// stamps, offer/draw counters), validation slice, lifetime stats and
    /// the current selector — as one versioned, checksummed text artifact.
    ///
    /// [`Self::restore`] rebuilds a **bit-identical** learner from it:
    /// same reservoir contents, same generator position, same next
    /// retrain output. See [`crate::checkpoint`] for the format and its
    /// rejection guarantees.
    pub fn checkpoint(&self) -> String {
        checkpoint::encode(&LearnerParts {
            config: self.config.clone(),
            boost: self.current.config().boost.clone(),
            records: self.buffer.records().to_vec(),
            stamps: self.buffer.stamps().to_vec(),
            seen: self.buffer.seen(),
            draws: self.buffer.draws(),
            validation: self.validation.iter().cloned().collect(),
            selector_text: self.current.to_text(),
            record_counter: self.record_counter,
            since_retrain: self.since_retrain,
            rounds: self.rounds,
            stats: self.stats,
        })
    }

    /// Rebuild a learner from [`Self::checkpoint`] output. Truncated,
    /// corrupted or drifted checkpoints are rejected with a
    /// [`CheckpointError`]; on success the restored learner replays
    /// exactly as the checkpointed one would have.
    pub fn restore(text: &str) -> Result<OnlineLearner, CheckpointError> {
        let parts = checkpoint::decode(text)?;
        let buffer = TrainingBuffer::from_parts(
            parts.config.buffer.clone(),
            parts.records,
            parts.stamps,
            parts.seen,
            parts.draws,
        )?;
        let mut selector = EstimatorSelector::from_text(&parts.selector_text)
            .map_err(|e| CheckpointError(format!("embedded selector: {e}")))?;
        // `from_text` drops the training recipe; re-seat the recorded one
        // so the restored learner's next retrain replays exactly.
        selector.set_boost(parts.boost);
        Ok(OnlineLearner {
            config: parts.config,
            buffer,
            validation: parts.validation.into(),
            current: Arc::new(selector),
            record_counter: parts.record_counter,
            since_retrain: parts.since_retrain,
            rounds: parts.rounds,
            stats: parts.stats,
            obs: None,
        })
    }

    /// Fit a candidate on the buffer and run guarded promotion. Resets
    /// the cadence counter whether or not anything was fit.
    pub fn retrain(&mut self) -> RetrainOutcome {
        self.since_retrain = 0;
        let train = self.buffer.training_set();
        if train.len() < self.config.min_records.max(1) {
            self.stats.skipped += 1;
            let outcome = RetrainOutcome {
                promoted: false,
                trained_on: 0,
                validation: self.validation.len(),
                candidate_l1: f64::NAN,
                incumbent_l1: f64::NAN,
            };
            if let Some(obs) = &self.obs {
                obs.skipped.inc();
                obs.ring.emit(ObsEvent::RetrainHeld {
                    trained_on: 0,
                    candidate_l1: f64::NAN,
                    incumbent_l1: f64::NAN,
                });
            }
            return outcome;
        }
        let fit_start = self.obs.is_some().then(Instant::now);
        self.rounds += 1;
        self.stats.retrains += 1;
        let seed = self.config.seed ^ self.rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Warm-start only while every ensemble stays under the tree cap;
        // past it, refit cold so a long-lived loop cannot grow its models
        // (and their predict cost) without bound.
        let widest = self
            .current
            .config()
            .candidates
            .iter()
            .filter_map(|&k| self.current.model(k))
            .map(prosel_mart::Mart::n_trees)
            .max()
            .unwrap_or(0);
        let warm = self.config.warm_trees > 0
            && (self.config.max_trees == 0
                || widest + self.config.warm_trees <= self.config.max_trees);
        let candidate = if warm {
            EstimatorSelector::retrain_from(&self.current, &train, self.config.warm_trees, seed)
        } else {
            let base = self.current.config();
            let cfg = SelectorConfig {
                candidates: base.candidates.clone(),
                mode: base.mode,
                boost: BoostParams { seed, ..base.boost.clone() },
            };
            EstimatorSelector::train(&train, &cfg)
        };
        let val = TrainingSet { records: self.validation.iter().cloned().collect() };
        let (candidate_l1, incumbent_l1, promoted) = if val.is_empty() {
            // No guard material: trust the fresh evidence.
            (f64::NAN, f64::NAN, true)
        } else {
            let c = candidate.evaluate(&val).chosen_l1;
            let i = self.current.evaluate(&val).chosen_l1;
            (c, i, c <= i - self.config.promote_margin)
        };
        if promoted {
            self.current = Arc::new(candidate);
            self.stats.promotions += 1;
        } else {
            self.stats.rejections += 1;
        }
        if let Some(obs) = &self.obs {
            if let Some(start) = fit_start {
                obs.retrain_ns.record(start.elapsed().as_nanos() as u64);
            }
            obs.retrains.inc();
            if candidate_l1.is_finite() {
                obs.holdout_l1.set(candidate_l1);
            }
            if promoted {
                obs.promotions.inc();
                obs.ring.emit(ObsEvent::RetrainPromoted {
                    trained_on: train.len(),
                    candidate_l1,
                    incumbent_l1,
                });
            } else {
                obs.rejections.inc();
                obs.ring.emit(ObsEvent::RetrainHeld {
                    trained_on: train.len(),
                    candidate_l1,
                    incumbent_l1,
                });
            }
        }
        RetrainOutcome {
            promoted,
            trained_on: train.len(),
            validation: val.len(),
            candidate_l1,
            incumbent_l1,
        }
    }
}
