//! The background trainer: the [`OnlineLearner`] core on its own thread.
//!
//! Retraining a MART ensemble takes orders of magnitude longer than
//! ingesting a trace event; a production monitor must never stall its
//! ingest path on a model fit. [`Trainer`] therefore owns the learner on
//! a dedicated thread fed by the harvest channel: the monitor's
//! [`prosel_monitor::HarvestSink`] (a plain sender) stays O(1), and every
//! promotion is pushed through the caller's `publish` hook — typically a
//! closure that stores the model in a [`crate::SelectorHub`] and
//! hot-swaps it into the [`prosel_monitor::MonitorService`].
//!
//! Lifecycle: the thread runs until every harvest sender is dropped; it
//! then performs one final retrain over any not-yet-trained tail (so a
//! short session still learns from its last queries) and returns the
//! learner — [`Trainer::join`] hands it back for inspection or
//! persistence.

use crate::learner::OnlineLearner;
use prosel_core::selection::EstimatorSelector;
use prosel_monitor::HarvestedQuery;
use prosel_obs::ObsEvent;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Serialize one checkpoint, hand it to the sink, and note the emission
/// (artifact size included) on the learner's trace ring when one is
/// attached via [`OnlineLearner::observe`].
fn emit_checkpoint(learner: &OnlineLearner, sink: impl Fn(&str)) {
    let text = learner.checkpoint();
    if let Some(ring) = learner.obs_ring() {
        ring.emit(ObsEvent::CheckpointEmitted { bytes: text.len() });
    }
    sink(&text);
}

/// Handle of the background retraining thread. See the module docs.
pub struct Trainer {
    handle: JoinHandle<OnlineLearner>,
}

impl Trainer {
    /// Spawn the trainer over `learner`, draining `rx`. `publish` is
    /// invoked (on the trainer thread) with every *promoted* selector —
    /// wire it to [`crate::SelectorHub::publish`] and
    /// [`prosel_monitor::MonitorService::swap_selector`]. Rejected or
    /// skipped rounds publish nothing.
    pub fn spawn(
        learner: OnlineLearner,
        rx: Receiver<HarvestedQuery>,
        publish: impl Fn(&Arc<EstimatorSelector>) + Send + 'static,
    ) -> Trainer {
        Self::spawn_impl(learner, rx, Box::new(publish), None)
    }

    /// [`Self::spawn`] plus crash safety: every `checkpoint_every`
    /// harvested queries (and once more after the final tail retrain) the
    /// trainer serializes the learner with
    /// [`OnlineLearner::checkpoint`] and hands the text to `checkpoint` —
    /// typically a closure writing it to a file, atomically-renamed, so a
    /// restarted process resumes via [`OnlineLearner::restore`] without
    /// losing its rare-group reservoir samples.
    ///
    /// `checkpoint_every == 0` checkpoints only at shutdown. Both hooks
    /// run on the trainer thread; a slow checkpoint sink back-pressures
    /// retraining, never the monitor's ingest path.
    pub fn spawn_with_checkpoints(
        learner: OnlineLearner,
        rx: Receiver<HarvestedQuery>,
        publish: impl Fn(&Arc<EstimatorSelector>) + Send + 'static,
        checkpoint_every: usize,
        checkpoint: impl Fn(&str) + Send + 'static,
    ) -> Trainer {
        Self::spawn_impl(
            learner,
            rx,
            Box::new(publish),
            Some((checkpoint_every, Box::new(checkpoint))),
        )
    }

    #[allow(clippy::type_complexity)]
    fn spawn_impl(
        mut learner: OnlineLearner,
        rx: Receiver<HarvestedQuery>,
        publish: Box<dyn Fn(&Arc<EstimatorSelector>) + Send>,
        checkpoints: Option<(usize, Box<dyn Fn(&str) + Send>)>,
    ) -> Trainer {
        let handle = std::thread::spawn(move || {
            let mut since_checkpoint = 0usize;
            while let Ok(harvest) = rx.recv() {
                if let Some(outcome) = learner.absorb_and_maybe_retrain(&harvest) {
                    if outcome.promoted {
                        publish(&learner.current());
                    }
                }
                if let Some((every, sink)) = &checkpoints {
                    since_checkpoint += 1;
                    if *every > 0 && since_checkpoint >= *every {
                        since_checkpoint = 0;
                        emit_checkpoint(&learner, sink);
                    }
                }
            }
            // All harvest senders are gone: learn from the tail before
            // handing the learner back.
            if learner.pending() > 0 {
                let outcome = learner.retrain();
                if outcome.promoted {
                    publish(&learner.current());
                }
            }
            // The shutdown checkpoint captures the tail retrain, so a
            // restart resumes from the very state `join` returns.
            if let Some((_, sink)) = &checkpoints {
                emit_checkpoint(&learner, sink);
            }
            learner
        });
        Trainer { handle }
    }

    /// Wait for the harvest channel to close and the final retrain to
    /// finish; returns the learner (current model, buffer, stats).
    ///
    /// # Panics
    /// Panics if the trainer thread itself panicked.
    pub fn join(self) -> OnlineLearner {
        self.handle.join().expect("trainer thread panicked")
    }
}
