//! The follower side of the fleet publication protocol.
//!
//! A trainer process owns one [`crate::SelectorHub`]; every monitor
//! process that should serve its models runs a [`SelectorSubscriber`]
//! over whatever byte stream connects them (a pipe, a socket, a tailed
//! file). The hub frames each promotion with
//! [`crate::SelectorHub::publish_to`]:
//!
//! ```text
//! prosel-publication v1
//! epoch <n> bytes <len> checksum <fnv64 hex>
//! <exactly len bytes of selector text>
//! endpublication
//! ```
//!
//! and the subscriber decodes frames one at a time, installing a
//! publication **only** when every integrity gate passes:
//!
//! * the frame is structurally complete — a stream that ends mid-frame is
//!   [`SubscribeError::Torn`], never a partial install;
//! * the payload checksum matches the declared one
//!   ([`SubscribeError::ChecksumMismatch`] otherwise — the frame is
//!   consumed, the stream remains usable);
//! * the epoch advances — an epoch at or below the installed one is
//!   [`SubscribeError::StaleEpoch`] (consumed and skipped: replays and
//!   out-of-order shippers must not roll a follower back);
//! * the payload parses as selector text
//!   ([`SubscribeError::Malformed`] otherwise).
//!
//! The serving glue is one line: pass each installed
//! [`Publication::selector`] to
//! [`prosel_monitor::MonitorService::swap_selector`].

use prosel_core::selection::EstimatorSelector;
use prosel_core::textio::fnv64;
use prosel_obs::{Counter, FrameRejectReason, MetricsRegistry, ObsEvent, TraceRing};
use std::io::BufRead;
use std::sync::Arc;

/// Metric handles + ring a subscriber publishes into when observed.
struct SubscriberObs {
    /// `subscriber_installed_total` — frames verified and installed.
    installed: Arc<Counter>,
    /// `subscriber_refused_total` — frames refused for any reason.
    refused: Arc<Counter>,
    /// Receives one [`ObsEvent::FrameRejected`] per refusal.
    ring: TraceRing,
}

/// Restate a [`SubscribeError`] as the obs crate's plain-data reason
/// (the learn crate depends on prosel-obs, never the reverse).
fn reject_reason(e: &SubscribeError) -> FrameRejectReason {
    match e {
        SubscribeError::Io(_) => FrameRejectReason::Io,
        SubscribeError::Torn(_) => FrameRejectReason::Torn,
        SubscribeError::ChecksumMismatch { declared, computed } => {
            FrameRejectReason::ChecksumMismatch { declared: *declared, computed: *computed }
        }
        SubscribeError::StaleEpoch { current, offered } => {
            FrameRejectReason::StaleEpoch { current: *current, offered: *offered }
        }
        SubscribeError::Malformed(_) => FrameRejectReason::Malformed,
    }
}

/// Why a publication frame was refused. Installation happens only on
/// `Ok(Some(_))` — every error leaves the previously installed selector
/// in place.
#[derive(Debug)]
pub enum SubscribeError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream ended (or lost sync) mid-frame: a partial header, a
    /// payload shorter than declared, or a missing terminator. The stream
    /// cannot be trusted past this point.
    Torn(String),
    /// The payload arrived complete but its bytes do not hash to the
    /// declared checksum.
    ChecksumMismatch {
        /// Checksum declared in the frame header.
        declared: u64,
        /// Checksum computed over the received payload bytes.
        computed: u64,
    },
    /// The frame's epoch does not advance past the installed one (replay
    /// or out-of-order delivery). The frame is skipped, not installed.
    StaleEpoch {
        /// Epoch currently installed in this subscriber.
        current: u64,
        /// Epoch offered by the refused frame.
        offered: u64,
    },
    /// The frame structure was intact but a field or the payload itself
    /// failed to parse.
    Malformed(String),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Io(e) => write!(f, "publication stream i/o error: {e}"),
            SubscribeError::Torn(detail) => write!(f, "torn publication frame: {detail}"),
            SubscribeError::ChecksumMismatch { declared, computed } => write!(
                f,
                "publication checksum mismatch: declared {declared:016x}, computed {computed:016x}"
            ),
            SubscribeError::StaleEpoch { current, offered } => write!(
                f,
                "stale publication: epoch {offered} does not advance past installed epoch {current}"
            ),
            SubscribeError::Malformed(detail) => write!(f, "malformed publication: {detail}"),
        }
    }
}

impl std::error::Error for SubscribeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubscribeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SubscribeError {
    fn from(e: std::io::Error) -> Self {
        SubscribeError::Io(e)
    }
}

/// One installed publication: the epoch and the decoded selector.
#[derive(Clone)]
pub struct Publication {
    /// Epoch the trainer stamped on this selector.
    pub epoch: u64,
    /// The decoded, checksum-verified selector.
    pub selector: Arc<EstimatorSelector>,
}

/// Decodes publication frames from a byte stream and tracks the highest
/// installed epoch. See the module docs for the rejection rules.
pub struct SelectorSubscriber {
    current: Option<Publication>,
    obs: Option<SubscriberObs>,
}

impl Default for SelectorSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectorSubscriber {
    /// A subscriber that has installed nothing yet: the first well-formed
    /// frame at any epoch is accepted (late joiners catch up from the
    /// stream itself).
    pub fn new() -> SelectorSubscriber {
        SelectorSubscriber { current: None, obs: None }
    }

    /// Publish install/refusal counters (`subscriber_installed_total`,
    /// `subscriber_refused_total`) into `registry` and emit one
    /// [`ObsEvent::FrameRejected`] — carrying the typed
    /// [`FrameRejectReason`] — onto `ring` for **every** refused frame,
    /// so the ring is a complete audit trail of why followers skipped
    /// publications.
    pub fn observe(&mut self, registry: &MetricsRegistry, ring: TraceRing) {
        self.obs = Some(SubscriberObs {
            installed: registry.counter("subscriber_installed_total"),
            refused: registry.counter("subscriber_refused_total"),
            ring,
        });
    }

    /// A subscriber that already serves `selector` at `epoch` (e.g.
    /// restored from a checkpoint): only frames advancing past `epoch`
    /// install.
    pub fn resume_at(epoch: u64, selector: Arc<EstimatorSelector>) -> SelectorSubscriber {
        SelectorSubscriber { current: Some(Publication { epoch, selector }), obs: None }
    }

    /// The installed publication, if any.
    pub fn current(&self) -> Option<&Publication> {
        self.current.as_ref()
    }

    /// The installed epoch, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.current.as_ref().map(|p| p.epoch)
    }

    /// Decode one frame from `reader`.
    ///
    /// * `Ok(Some(publication))` — verified and installed;
    /// * `Ok(None)` — clean end of stream **at a frame boundary**;
    /// * `Err(_)` — the frame was refused; nothing was installed. After
    ///   [`SubscribeError::ChecksumMismatch`], [`SubscribeError::StaleEpoch`]
    ///   or [`SubscribeError::Malformed`] the offending frame has been
    ///   fully consumed and the next call reads the next frame; after
    ///   [`SubscribeError::Io`] / [`SubscribeError::Torn`] the stream
    ///   position is undefined.
    pub fn recv_from(
        &mut self,
        reader: &mut dyn BufRead,
    ) -> Result<Option<Publication>, SubscribeError> {
        let out = self.recv_inner(reader);
        if let Some(obs) = &self.obs {
            match &out {
                Ok(Some(_)) => obs.installed.inc(),
                Ok(None) => {}
                Err(e) => {
                    obs.refused.inc();
                    obs.ring.emit(ObsEvent::FrameRejected { reason: reject_reason(e) });
                }
            }
        }
        out
    }

    /// The uninstrumented decode path behind [`Self::recv_from`].
    fn recv_inner(
        &mut self,
        reader: &mut dyn BufRead,
    ) -> Result<Option<Publication>, SubscribeError> {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        if header.trim_end() != "prosel-publication v1" {
            return Err(SubscribeError::Torn(format!(
                "expected header \"prosel-publication v1\", got {:?}",
                header.trim_end()
            )));
        }
        let mut meta = String::new();
        if reader.read_line(&mut meta)? == 0 || !meta.ends_with('\n') {
            return Err(SubscribeError::Torn("stream ended inside the frame header".into()));
        }
        let parts: Vec<&str> = meta.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "epoch" || parts[2] != "bytes" || parts[4] != "checksum"
        {
            return Err(SubscribeError::Malformed(format!(
                "bad meta line (want `epoch <n> bytes <len> checksum <hex>`): {:?}",
                meta.trim_end()
            )));
        }
        let epoch: u64 = parts[1]
            .parse()
            .map_err(|e| SubscribeError::Malformed(format!("epoch {:?}: {e}", parts[1])))?;
        let bytes: usize = parts[3]
            .parse()
            .map_err(|e| SubscribeError::Malformed(format!("bytes {:?}: {e}", parts[3])))?;
        let declared = u64::from_str_radix(parts[5], 16)
            .map_err(|e| SubscribeError::Malformed(format!("checksum {:?}: {e}", parts[5])))?;
        let mut payload = vec![0u8; bytes];
        reader.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                SubscribeError::Torn(format!("payload truncated (declared {bytes} bytes): {e}"))
            } else {
                SubscribeError::Io(e)
            }
        })?;
        let mut terminator = String::new();
        if reader.read_line(&mut terminator)? == 0 {
            return Err(SubscribeError::Torn("stream ended before the frame terminator".into()));
        }
        if terminator.trim_end() != "endpublication" {
            return Err(SubscribeError::Torn(format!(
                "expected \"endpublication\" after {bytes} payload bytes, got {:?} — \
                 the declared length and the payload disagree",
                terminator.trim_end()
            )));
        }
        // The frame is structurally complete from here on: every further
        // refusal consumes it and leaves the stream aligned on the next
        // frame.
        let computed = fnv64(&payload);
        if computed != declared {
            return Err(SubscribeError::ChecksumMismatch { declared, computed });
        }
        if let Some(cur) = &self.current {
            if epoch <= cur.epoch {
                return Err(SubscribeError::StaleEpoch { current: cur.epoch, offered: epoch });
            }
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| SubscribeError::Malformed(format!("payload is not utf-8: {e}")))?;
        let selector = EstimatorSelector::from_text(text).map_err(|e| {
            SubscribeError::Malformed(format!("payload failed selector parse: {e}"))
        })?;
        let publication = Publication { epoch, selector: Arc::new(selector) };
        self.current = Some(publication.clone());
        Ok(Some(publication))
    }

    /// Drain every frame currently available on `reader`, returning the
    /// last installed publication (if any frame installed). Skippable
    /// refusals (stale, checksum, malformed) are counted and skipped;
    /// torn/i/o errors abort the drain.
    pub fn catch_up(
        &mut self,
        reader: &mut dyn BufRead,
    ) -> Result<(Option<Publication>, usize), SubscribeError> {
        let mut installed = None;
        let mut skipped = 0usize;
        loop {
            match self.recv_from(reader) {
                Ok(Some(p)) => installed = Some(p),
                Ok(None) => return Ok((installed, skipped)),
                Err(SubscribeError::StaleEpoch { .. })
                | Err(SubscribeError::ChecksumMismatch { .. })
                | Err(SubscribeError::Malformed(_)) => skipped += 1,
                Err(fatal) => return Err(fatal),
            }
        }
    }
}
