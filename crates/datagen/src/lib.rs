//! # prosel-datagen
//!
//! Synthetic benchmark databases for progress-estimation experiments.
//!
//! The paper evaluates on TPC-H (generated with Microsoft's skewed `dbgen`,
//! Zipf factor Z ∈ {0,1,2}), TPC-DS, and two proprietary real-world
//! decision-support databases. None of those artifacts are redistributable,
//! so this crate generates *shape-faithful* substitutes:
//!
//! * [`tpch`] — the 8-table TPC-H schema with configurable scale factor and
//!   Zipfian skew applied to foreign keys and value columns;
//! * [`tpcds`] — a star-schema TPC-DS subset (one fact table, five
//!   dimensions);
//! * [`realworld`] — two "real-life" style databases: `real1` (a sales /
//!   reporting schema with correlated columns, queried with 5–8-way joins)
//!   and `real2` (a wide snowflake queried with ~12-way joins).
//!
//! Row counts are scaled down roughly 1000× relative to the paper's
//! multi-GB databases: the execution substrate is a simulator, and what
//! matters for estimator behaviour is the *distributional* shape (skew,
//! fan-out variance, correlation, operator mix), which is preserved.
//!
//! All generation is deterministic given a seed.

pub mod physical;
pub mod realworld;
pub mod schema;
pub mod table;
pub mod tpcds;
pub mod tpch;
pub mod zipf;

pub use physical::{IndexDef, PhysicalDesign, TuningLevel};
pub use schema::{ColumnMeta, TableMeta};
pub use table::{Column, Database, Table};
pub use zipf::Zipf;
