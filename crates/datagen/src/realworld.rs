//! Synthetic stand-ins for the paper's two proprietary real-world
//! decision-support databases.
//!
//! * **Real-1** (paper: 9 GB sales/reporting DB, 477 queries, 5–8-way joins
//!   and nested sub-queries) — [`generate_real1`] builds an 8-table sales
//!   schema with *correlated* attributes (product price bands by category,
//!   deal size by industry, amount = units × price across a join), because
//!   correlation is the dominant source of real-world cardinality
//!   estimation error.
//! * **Real-2** (paper: 12 GB DB, 632 queries, ~12 joins per query) —
//!   [`generate_real2`] builds a wide snowflake: one fact table, six
//!   dimensions, six sub-dimensions, so a typical query can join 12+
//!   tables.

use crate::schema::{ColumnMeta, ColumnRole, TableMeta};
use crate::table::{Column, Database, Table};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration shared by both real-world generators.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// Scale factor; `1.0` ≈ 4k fact rows for real1, 5k for real2.
    pub scale: f64,
    /// Skew of fact-table foreign keys.
    pub skew: f64,
    pub seed: u64,
}

impl Default for RealConfig {
    fn default() -> Self {
        RealConfig { scale: 1.0, skew: 1.2, seed: 42 }
    }
}

fn pk(n: usize) -> Vec<i64> {
    (1..=n as i64).collect()
}

/// Generate the Real-1 style sales database.
pub fn generate_real1(cfg: &RealConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a1e_5a1e);
    let mut db = Database::new(&format!("real1_sf{}", cfg.scale));

    let n_acct = ((120.0 * cfg.scale) as usize).max(20);
    let n_prod = ((80.0 * cfg.scale) as usize).max(10);
    let n_terr = 30;
    let n_emp = ((40.0 * cfg.scale) as usize).max(8);
    let n_dates = 1096;
    let n_sales = ((4000.0 * cfg.scale) as usize).max(200);
    let n_targets = ((160.0 * cfg.scale) as usize).max(16);

    // territories(t_id, t_region)
    {
        let meta = TableMeta::new(
            "territories",
            96,
            vec![
                ColumnMeta::new("t_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("t_region", ColumnRole::Category { cardinality: 15 }),
            ],
        );
        let region = (0..n_terr).map(|i| (i as i64 % 15) + 1).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "t_id".into(), data: pk(n_terr) },
                Column { name: "t_region".into(), data: region },
            ],
        ));
    }

    // accounts(a_id, a_region, a_industry, a_size): size correlates with industry.
    {
        let meta = TableMeta::new(
            "accounts",
            210,
            vec![
                ColumnMeta::new("a_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("a_region", ColumnRole::Category { cardinality: 15 }),
                ColumnMeta::new("a_industry", ColumnRole::Category { cardinality: 30 }),
                ColumnMeta::new("a_size", ColumnRole::Value { min: 1, max: 1000 }),
            ],
        );
        let industry_dist = Zipf::new(30, 1.0);
        let region: Vec<i64> = (0..n_acct).map(|_| rng.random_range(1..=15)).collect();
        let industry: Vec<i64> =
            (0..n_acct).map(|_| industry_dist.sample(&mut rng) as i64).collect();
        let size =
            industry.iter().map(|&i| (i * 30 + rng.random_range(1i64..=100)).min(1000)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "a_id".into(), data: pk(n_acct) },
                Column { name: "a_region".into(), data: region },
                Column { name: "a_industry".into(), data: industry },
                Column { name: "a_size".into(), data: size },
            ],
        ));
    }

    // products(p_id, p_category, p_price): price band by category.
    let prod_price: Vec<i64> = {
        let meta = TableMeta::new(
            "products",
            190,
            vec![
                ColumnMeta::new("p_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("p_category", ColumnRole::Category { cardinality: 12 }),
                ColumnMeta::new("p_price", ColumnRole::Value { min: 5, max: 1300 }),
            ],
        );
        let cat_dist = Zipf::new(12, 0.8);
        let category: Vec<i64> = (0..n_prod).map(|_| cat_dist.sample(&mut rng) as i64).collect();
        let price: Vec<i64> =
            category.iter().map(|&c| c * 100 + rng.random_range(5i64..=100)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "p_id".into(), data: pk(n_prod) },
                Column { name: "p_category".into(), data: category },
                Column { name: "p_price".into(), data: price.clone() },
            ],
        ));
        price
    };

    // employees(e_id, e_territory, e_quota)
    {
        let meta = TableMeta::new(
            "employees",
            150,
            vec![
                ColumnMeta::new("e_id", ColumnRole::PrimaryKey),
                ColumnMeta::new(
                    "e_territory",
                    ColumnRole::ForeignKey { table: "territories".into() },
                ),
                ColumnMeta::new("e_quota", ColumnRole::Value { min: 100, max: 10_000 }),
            ],
        );
        let terr = (0..n_emp).map(|_| rng.random_range(1..=n_terr as i64)).collect();
        let quota = (0..n_emp).map(|_| rng.random_range(100..=10_000)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "e_id".into(), data: pk(n_emp) },
                Column { name: "e_territory".into(), data: terr },
                Column { name: "e_quota".into(), data: quota },
            ],
        ));
    }

    // dates(d_id, d_year, d_quarter, d_month)
    {
        let meta = TableMeta::new(
            "dates",
            80,
            vec![
                ColumnMeta::new("d_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("d_year", ColumnRole::Value { min: 2008, max: 2010 }),
                ColumnMeta::new("d_quarter", ColumnRole::Value { min: 1, max: 4 }),
                ColumnMeta::new("d_month", ColumnRole::Value { min: 1, max: 12 }),
            ],
        );
        let mut year = Vec::new();
        let mut quarter = Vec::new();
        let mut month = Vec::new();
        for d in 0..n_dates as i64 {
            year.push(2008 + d / 366);
            let m = (d % 366) / 31 + 1;
            month.push(m.min(12));
            quarter.push((m.min(12) - 1) / 3 + 1);
        }
        db.add(Table::new(
            meta,
            vec![
                Column { name: "d_id".into(), data: pk(n_dates) },
                Column { name: "d_year".into(), data: year },
                Column { name: "d_quarter".into(), data: quarter },
                Column { name: "d_month".into(), data: month },
            ],
        ));
    }

    // sales fact: amount = units * product price (cross-join correlation).
    let n_sales_actual;
    {
        let meta = TableMeta::new(
            "sales",
            140,
            vec![
                ColumnMeta::new("s_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("s_account", ColumnRole::ForeignKey { table: "accounts".into() }),
                ColumnMeta::new("s_product", ColumnRole::ForeignKey { table: "products".into() }),
                ColumnMeta::new("s_employee", ColumnRole::ForeignKey { table: "employees".into() }),
                ColumnMeta::new("s_date", ColumnRole::ForeignKey { table: "dates".into() }),
                ColumnMeta::new("s_units", ColumnRole::Value { min: 1, max: 40 }),
                ColumnMeta::new("s_amount", ColumnRole::Value { min: 5, max: 52_000 }),
            ],
        );
        let acct_dist = Zipf::new(n_acct as u64, cfg.skew);
        let prod_dist = Zipf::new(n_prod as u64, cfg.skew);
        let unit_dist = Zipf::new(40, cfg.skew.min(1.5));
        let mut account = Vec::with_capacity(n_sales);
        let mut product = Vec::with_capacity(n_sales);
        let mut employee = Vec::with_capacity(n_sales);
        let mut date = Vec::with_capacity(n_sales);
        let mut units: Vec<i64> = Vec::with_capacity(n_sales);
        let mut amount = Vec::with_capacity(n_sales);
        for i in 0..n_sales {
            // Account base grows over time; sales are appended by date.
            let frac = (i as f64 + 1.0) / n_sales as f64;
            let acct_cap = ((0.25 + 0.75 * frac) * n_acct as f64).ceil().max(1.0) as i64;
            account.push((acct_dist.sample_permuted(&mut rng) as i64 - 1) % acct_cap + 1);
            let p = prod_dist.sample_permuted(&mut rng) as i64;
            product.push(p);
            employee.push(rng.random_range(1..=n_emp as i64));
            let base = n_dates as f64 * frac;
            date.push(
                (base + rng.random_range(-90.0f64..90.0)).round().clamp(1.0, n_dates as f64) as i64
            );
            let u = unit_dist.sample(&mut rng) as i64;
            units.push(u);
            amount.push(u * prod_price[(p - 1) as usize]);
        }
        n_sales_actual = account.len();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "s_id".into(), data: pk(n_sales) },
                Column { name: "s_account".into(), data: account },
                Column { name: "s_product".into(), data: product },
                Column { name: "s_employee".into(), data: employee },
                Column { name: "s_date".into(), data: date },
                Column { name: "s_units".into(), data: units },
                Column { name: "s_amount".into(), data: amount },
            ],
        ));
    }

    // shipments: ~3/4 of sales ship (semi-join-shaped relationship).
    {
        let meta = TableMeta::new(
            "shipments",
            110,
            vec![
                ColumnMeta::new("sh_sale", ColumnRole::ForeignKey { table: "sales".into() }),
                ColumnMeta::new("sh_carrier", ColumnRole::Category { cardinality: 8 }),
                ColumnMeta::new("sh_delay", ColumnRole::Value { min: 0, max: 60 }),
            ],
        );
        let mut sale = Vec::new();
        let mut carrier = Vec::new();
        let mut delay = Vec::new();
        let carrier_dist = Zipf::new(8, 0.9);
        for s in 1..=n_sales_actual as i64 {
            if rng.random_range(0..4) < 3 {
                sale.push(s);
                carrier.push(carrier_dist.sample(&mut rng) as i64);
                delay.push(rng.random_range(0..=60));
            }
        }
        db.add(Table::new(
            meta,
            vec![
                Column { name: "sh_sale".into(), data: sale },
                Column { name: "sh_carrier".into(), data: carrier },
                Column { name: "sh_delay".into(), data: delay },
            ],
        ));
    }

    // targets(tg_employee, tg_quarter, tg_amount)
    {
        let meta = TableMeta::new(
            "targets",
            72,
            vec![
                ColumnMeta::new(
                    "tg_employee",
                    ColumnRole::ForeignKey { table: "employees".into() },
                ),
                ColumnMeta::new("tg_quarter", ColumnRole::Value { min: 1, max: 12 }),
                ColumnMeta::new("tg_amount", ColumnRole::Value { min: 100, max: 20_000 }),
            ],
        );
        let employee = (0..n_targets).map(|i| (i % n_emp) as i64 + 1).collect();
        let quarter = (0..n_targets).map(|_| rng.random_range(1..=12)).collect();
        let amount = (0..n_targets).map(|_| rng.random_range(100..=20_000)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "tg_employee".into(), data: employee },
                Column { name: "tg_quarter".into(), data: quarter },
                Column { name: "tg_amount".into(), data: amount },
            ],
        ));
    }

    db
}

/// Names of Real-2's dimension / sub-dimension pairs: the fact table
/// `events` has FK `e_dim{i}` → `dim{i}.d_id`, and each `dim{i}` has
/// FK `d_sub` → `subdim{i}.sd_id`.
pub const REAL2_DIMS: usize = 6;

/// Generate the Real-2 style snowflake database (1 fact + 6 dims + 6
/// sub-dims = 13 tables).
pub fn generate_real2(cfg: &RealConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x2ea1_2222);
    let mut db = Database::new(&format!("real2_sf{}", cfg.scale));

    let n_fact = ((5000.0 * cfg.scale) as usize).max(300);
    let dim_sizes: Vec<usize> =
        (0..REAL2_DIMS).map(|i| (((40 + i * 70) as f64 * cfg.scale) as usize).max(8)).collect();
    let sub_sizes: Vec<usize> = (0..REAL2_DIMS).map(|i| 8 + i * 7).collect();

    for i in 0..REAL2_DIMS {
        // subdim{i}(sd_id, sd_attr)
        let sub_name = format!("subdim{i}");
        let meta = TableMeta::new(
            &sub_name,
            88,
            vec![
                ColumnMeta::new("sd_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("sd_attr", ColumnRole::Category { cardinality: 6 }),
            ],
        );
        let attr = (0..sub_sizes[i]).map(|_| rng.random_range(1..=6)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "sd_id".into(), data: pk(sub_sizes[i]) },
                Column { name: "sd_attr".into(), data: attr },
            ],
        ));

        // dim{i}(d_id, d_sub, d_attr, d_weight)
        let dim_name = format!("dim{i}");
        let meta = TableMeta::new(
            &dim_name,
            130,
            vec![
                ColumnMeta::new("d_id", ColumnRole::PrimaryKey),
                ColumnMeta::new("d_sub", ColumnRole::ForeignKey { table: sub_name.clone() }),
                ColumnMeta::new("d_attr", ColumnRole::Category { cardinality: 10 }),
                ColumnMeta::new("d_weight", ColumnRole::Value { min: 1, max: 500 }),
            ],
        );
        let sub_dist = Zipf::new(sub_sizes[i] as u64, 0.8);
        let sub = (0..dim_sizes[i]).map(|_| sub_dist.sample(&mut rng) as i64).collect();
        let attr: Vec<i64> = (0..dim_sizes[i]).map(|_| rng.random_range(1..=10)).collect();
        // Weight correlates with attr.
        let weight = attr.iter().map(|&a| a * 40 + rng.random_range(1i64..=100)).collect();
        db.add(Table::new(
            meta,
            vec![
                Column { name: "d_id".into(), data: pk(dim_sizes[i]) },
                Column { name: "d_sub".into(), data: sub },
                Column { name: "d_attr".into(), data: attr },
                Column { name: "d_weight".into(), data: weight },
            ],
        ));
    }

    // events fact table.
    let mut cols = vec![ColumnMeta::new("e_id", ColumnRole::PrimaryKey)];
    for i in 0..REAL2_DIMS {
        cols.push(ColumnMeta::new(
            &format!("e_dim{i}"),
            ColumnRole::ForeignKey { table: format!("dim{i}") },
        ));
    }
    cols.push(ColumnMeta::new("e_metric1", ColumnRole::Value { min: 1, max: 10_000 }));
    cols.push(ColumnMeta::new("e_metric2", ColumnRole::Value { min: 1, max: 1000 }));
    cols.push(ColumnMeta::new("e_kind", ColumnRole::Category { cardinality: 9 }));
    let meta = TableMeta::new("events", 152, cols);

    let mut data: Vec<Vec<i64>> = vec![pk(n_fact)];
    for &size in dim_sizes.iter().take(REAL2_DIMS) {
        let dist = Zipf::new(size as u64, cfg.skew);
        data.push((0..n_fact).map(|_| dist.sample_permuted(&mut rng) as i64).collect());
    }
    let kind_dist = Zipf::new(9, 1.0);
    let m1: Vec<i64> = (0..n_fact).map(|_| rng.random_range(1..=10_000)).collect();
    let m2 = m1.iter().map(|&v| (v / 10).max(1)).collect(); // correlated metrics
    data.push(m1);
    data.push(m2);
    data.push((0..n_fact).map(|_| kind_dist.sample(&mut rng) as i64).collect());

    let names: Vec<String> = meta.columns.iter().map(|c| c.name.clone()).collect();
    db.add(Table::new(
        meta,
        names.into_iter().zip(data).map(|(name, data)| Column { name, data }).collect(),
    ));
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real1_has_eight_tables() {
        let db = generate_real1(&RealConfig::default());
        assert_eq!(db.table_names().len(), 8);
        assert!(db.table("sales").rows() >= 200);
    }

    #[test]
    fn real1_amount_correlates_with_price() {
        let db = generate_real1(&RealConfig::default());
        let sales = db.table("sales");
        let products = db.table("products");
        let s_prod = sales.column(sales.col("s_product"));
        let s_units = sales.column(sales.col("s_units"));
        let s_amount = sales.column(sales.col("s_amount"));
        let p_price = products.column(products.col("p_price"));
        for i in 0..sales.rows().min(500) {
            let expect = s_units[i] * p_price[(s_prod[i] - 1) as usize];
            assert_eq!(s_amount[i], expect, "row {i}");
        }
    }

    #[test]
    fn real2_has_thirteen_tables() {
        let db = generate_real2(&RealConfig::default());
        assert_eq!(db.table_names().len(), 1 + 2 * REAL2_DIMS);
        let ev = db.table("events");
        for i in 0..REAL2_DIMS {
            let dim = db.table(&format!("dim{i}"));
            let fk = ev.column(ev.col(&format!("e_dim{i}")));
            let n = dim.rows() as i64;
            for &v in fk.iter().take(300) {
                assert!(v >= 1 && v <= n);
            }
            // dim's sub FK valid too
            let sub = db.table(&format!("subdim{i}"));
            let sfk = dim.column(dim.col("d_sub"));
            for &v in sfk {
                assert!(v >= 1 && v <= sub.rows() as i64);
            }
        }
    }

    #[test]
    fn real_generators_deterministic() {
        let a = generate_real1(&RealConfig::default());
        let b = generate_real1(&RealConfig::default());
        assert_eq!(a.table("sales").column(1), b.table("sales").column(1));
        let c = generate_real2(&RealConfig::default());
        let d = generate_real2(&RealConfig::default());
        assert_eq!(c.table("events").column(1), d.table("events").column(1));
    }
}
