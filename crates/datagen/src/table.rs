//! In-memory columnar tables and databases.

use crate::schema::TableMeta;
use std::collections::BTreeMap;

/// One materialized column (all values are `i64`).
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data: Vec<i64>,
}

/// A columnar table plus its metadata.
#[derive(Debug, Clone)]
pub struct Table {
    pub meta: TableMeta,
    pub columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table from metadata and per-column data vectors.
    ///
    /// # Panics
    /// Panics if the column count or any column length is inconsistent with
    /// the metadata.
    pub fn new(meta: TableMeta, columns: Vec<Column>) -> Self {
        assert_eq!(
            meta.columns.len(),
            columns.len(),
            "table {}: metadata declares {} columns, data has {}",
            meta.name,
            meta.columns.len(),
            columns.len()
        );
        let rows = columns.first().map_or(0, |c| c.data.len());
        for c in &columns {
            assert_eq!(c.data.len(), rows, "table {}: ragged column {}", meta.name, c.name);
        }
        Table { meta, columns, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Average logical row width in bytes.
    pub fn row_bytes(&self) -> u32 {
        self.meta.row_bytes
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> usize {
        self.meta
            .col(name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.meta.name))
    }

    /// Borrow a column's data by index.
    pub fn column(&self, idx: usize) -> &[i64] {
        &self.columns[idx].data
    }

    /// Value at (row, col).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> i64 {
        self.columns[col].data[row]
    }

    /// Minimum and maximum of a column, or `None` for an empty table.
    pub fn min_max(&self, col: usize) -> Option<(i64, i64)> {
        let d = &self.columns[col].data;
        if d.is_empty() {
            return None;
        }
        let mut lo = d[0];
        let mut hi = d[0];
        for &v in &d[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pub name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new(name: &str) -> Self {
        Database { name: name.to_string(), tables: BTreeMap::new() }
    }

    pub fn add(&mut self, table: Table) {
        let name = table.name().to_string();
        let prev = self.tables.insert(name.clone(), table);
        assert!(prev.is_none(), "duplicate table {name}");
    }

    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("database {} has no table {name}", self.name))
    }

    pub fn try_table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, ColumnRole};

    fn toy_table() -> Table {
        let meta = TableMeta::new(
            "toy",
            64,
            vec![
                ColumnMeta::new("id", ColumnRole::PrimaryKey),
                ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 100 }),
            ],
        );
        Table::new(
            meta,
            vec![
                Column { name: "id".into(), data: vec![1, 2, 3] },
                Column { name: "v".into(), data: vec![5, -7, 42] },
            ],
        )
    }

    #[test]
    fn table_accessors() {
        let t = toy_table();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.col("v"), 1);
        assert_eq!(t.value(2, 1), 42);
        assert_eq!(t.min_max(1), Some((-7, 42)));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let meta = TableMeta::new(
            "bad",
            8,
            vec![
                ColumnMeta::new("a", ColumnRole::PrimaryKey),
                ColumnMeta::new("b", ColumnRole::PrimaryKey),
            ],
        );
        let _ = Table::new(
            meta,
            vec![
                Column { name: "a".into(), data: vec![1] },
                Column { name: "b".into(), data: vec![1, 2] },
            ],
        );
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new("d");
        db.add(toy_table());
        assert_eq!(db.table("toy").rows(), 3);
        assert_eq!(db.total_rows(), 3);
        assert!(db.try_table("none").is_none());
    }
}
