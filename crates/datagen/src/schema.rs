//! Logical schema metadata.
//!
//! Tables store every column as `i64` (the execution simulator only needs
//! comparable, hashable keys and numeric payloads); the metadata here
//! records what each column *means* so the planner's statistics and the
//! workload generators can pick sensible predicates, and so the
//! bytes-processed model sees realistic row widths.

/// Role of a column, used by workload generators and statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnRole {
    /// Primary key (dense, unique, 1-based).
    PrimaryKey,
    /// Foreign key referencing `table`'s primary key.
    ForeignKey { table: String },
    /// General measure / attribute with a value domain.
    Value { min: i64, max: i64 },
    /// Low-cardinality categorical attribute with `cardinality` distinct codes.
    Category { cardinality: u64 },
    /// Day-number date column.
    Date { min_day: i64, max_day: i64 },
}

/// Metadata for one column.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    pub name: String,
    pub role: ColumnRole,
}

impl ColumnMeta {
    pub fn new(name: &str, role: ColumnRole) -> Self {
        ColumnMeta { name: name.to_string(), role }
    }
}

/// Metadata for one table: column roles plus the average *logical* row
/// width in bytes (what a real system would read per row — the generated
/// columns only materialize the fields needed for execution, but strings,
/// comments etc. contribute to the byte counters of the I/O model).
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: String,
    pub columns: Vec<ColumnMeta>,
    pub row_bytes: u32,
}

impl TableMeta {
    pub fn new(name: &str, row_bytes: u32, columns: Vec<ColumnMeta>) -> Self {
        TableMeta { name: name.to_string(), columns, row_bytes }
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_lookup() {
        let meta = TableMeta::new(
            "t",
            100,
            vec![
                ColumnMeta::new("a", ColumnRole::PrimaryKey),
                ColumnMeta::new("b", ColumnRole::Value { min: 0, max: 9 }),
            ],
        );
        assert_eq!(meta.col("a"), Some(0));
        assert_eq!(meta.col("b"), Some(1));
        assert_eq!(meta.col("zzz"), None);
    }
}
