//! Physical database designs (index configurations).
//!
//! The paper's Section 6 evaluates TPC-H under three designs produced by
//! the Database Tuning Advisor: *untuned* (only integrity-constraint
//! indexes), *partially tuned* (DTA limited to half the fully-tuned index
//! space) and *fully tuned*. The design determines which access paths and
//! join methods the planner can choose, which in turn shifts the operator
//! mix that progress estimation sees (paper Table 1: more index seeks,
//! nested-loop joins and batch sorts as tuning increases).

use crate::schema::ColumnRole;
use crate::table::Database;

/// A secondary index on `(table, key_col)` providing sorted access and
/// point/range seeks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub table: String,
    pub key_col: String,
}

impl IndexDef {
    pub fn new(table: &str, key_col: &str) -> Self {
        IndexDef { table: table.to_string(), key_col: key_col.to_string() }
    }
}

/// Tuning level, mirroring the paper's three configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningLevel {
    Untuned,
    PartiallyTuned,
    FullyTuned,
}

impl TuningLevel {
    pub const ALL: [TuningLevel; 3] =
        [TuningLevel::Untuned, TuningLevel::PartiallyTuned, TuningLevel::FullyTuned];

    pub fn name(&self) -> &'static str {
        match self {
            TuningLevel::Untuned => "untuned",
            TuningLevel::PartiallyTuned => "partially_tuned",
            TuningLevel::FullyTuned => "fully_tuned",
        }
    }
}

/// A physical design: the set of usable indexes.
#[derive(Debug, Clone)]
pub struct PhysicalDesign {
    pub level: TuningLevel,
    pub indexes: Vec<IndexDef>,
}

impl PhysicalDesign {
    /// Derive a design for `db` at the given tuning level.
    ///
    /// * `Untuned`: indexes on primary keys only (integrity constraints).
    /// * `PartiallyTuned`: PKs plus foreign-key indexes on the largest
    ///   *half* of the tables (by rows), emulating DTA under a space budget.
    /// * `FullyTuned`: PKs plus all foreign-key indexes plus indexes on
    ///   date and category columns (the filter columns DTA would cover).
    pub fn derive(db: &Database, level: TuningLevel) -> Self {
        let mut indexes = Vec::new();
        // PK indexes always exist.
        for t in db.tables() {
            for c in &t.meta.columns {
                if matches!(c.role, ColumnRole::PrimaryKey) {
                    indexes.push(IndexDef::new(t.name(), &c.name));
                }
            }
        }
        match level {
            TuningLevel::Untuned => {}
            TuningLevel::PartiallyTuned => {
                let mut sizes: Vec<(&str, usize)> =
                    db.tables().map(|t| (t.name(), t.rows())).collect();
                sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                let big: Vec<&str> =
                    sizes.iter().take(sizes.len().div_ceil(2)).map(|&(n, _)| n).collect();
                for t in db.tables() {
                    if !big.contains(&t.name()) {
                        continue;
                    }
                    for c in &t.meta.columns {
                        if matches!(c.role, ColumnRole::ForeignKey { .. }) {
                            indexes.push(IndexDef::new(t.name(), &c.name));
                        }
                    }
                }
            }
            TuningLevel::FullyTuned => {
                for t in db.tables() {
                    for c in &t.meta.columns {
                        match c.role {
                            ColumnRole::ForeignKey { .. } | ColumnRole::Date { .. } => {
                                indexes.push(IndexDef::new(t.name(), &c.name));
                            }
                            ColumnRole::Category { cardinality } if cardinality >= 5 => {
                                indexes.push(IndexDef::new(t.name(), &c.name));
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        PhysicalDesign { level, indexes }
    }

    /// Does an index on `(table, col)` exist?
    pub fn has_index(&self, table: &str, col: &str) -> bool {
        self.indexes.iter().any(|i| i.table == table && i.key_col == col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};

    #[test]
    fn untuned_has_pk_only() {
        let db = generate(&TpchConfig { scale: 0.2, skew: 0.0, seed: 1 });
        let d = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        assert!(d.has_index("orders", "o_orderkey"));
        assert!(!d.has_index("orders", "o_custkey"));
        assert!(!d.has_index("lineitem", "l_orderkey"));
    }

    #[test]
    fn tuning_levels_monotone() {
        let db = generate(&TpchConfig { scale: 0.2, skew: 0.0, seed: 1 });
        let u = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let p = PhysicalDesign::derive(&db, TuningLevel::PartiallyTuned);
        let f = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
        assert!(u.indexes.len() < p.indexes.len());
        assert!(p.indexes.len() < f.indexes.len());
        // Everything in untuned is in partial; everything in partial is in full.
        for i in &u.indexes {
            assert!(p.indexes.contains(i));
        }
        for i in &p.indexes {
            assert!(f.indexes.contains(i), "missing {i:?} in full");
        }
    }

    #[test]
    fn fully_tuned_covers_fk_and_dates() {
        let db = generate(&TpchConfig { scale: 0.2, skew: 0.0, seed: 1 });
        let f = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
        assert!(f.has_index("lineitem", "l_orderkey"));
        assert!(f.has_index("lineitem", "l_partkey"));
        assert!(f.has_index("lineitem", "l_shipdate"));
        assert!(f.has_index("orders", "o_orderdate"));
    }
}
