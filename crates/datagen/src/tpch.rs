//! TPC-H-shaped database generator with Zipfian skew.
//!
//! Mirrors the 8-table TPC-H schema and the Microsoft skewed-`dbgen`
//! convention used by the paper: a single Zipf parameter Z controls the
//! skew of foreign-key reference patterns and of value columns
//! (quantity, categories). `Z = 0` is uniform (standard TPC-H); the paper
//! evaluates Z ∈ {0, 1, 2}.
//!
//! Row counts are scaled down ~1000× versus real TPC-H: `scale = 10`
//! yields a lineitem of ~60k rows instead of 60M. Workload behaviour that
//! matters for progress estimation (fan-out variance, operator mix,
//! cardinality-estimation error) is driven by the distributions, not the
//! absolute sizes.

use crate::schema::{ColumnMeta, ColumnRole, TableMeta};
use crate::table::{Column, Database, Table};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale factor; `1.0` ≈ 6k lineitem rows (a 1000× scaled-down SF1).
    pub scale: f64,
    /// Zipf skew Z applied to foreign keys and value columns (0 = uniform).
    pub skew: f64,
    /// RNG seed; generation is fully deterministic.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale: 1.0, skew: 1.0, seed: 42 }
    }
}

fn scaled(base: u64, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

/// Day-number domain used for all date columns (~7 years, like TPC-H's
/// 1992-01-01 .. 1998-12-31).
pub const DATE_MIN: i64 = 0;
pub const DATE_MAX: i64 = 2556;

/// Generate a TPC-H-shaped [`Database`].
pub fn generate(cfg: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7c67_15c3);
    let mut db = Database::new(&format!("tpch_sf{}_z{}", cfg.scale, cfg.skew));

    let n_supplier = scaled(10, cfg.scale);
    let n_customer = scaled(150, cfg.scale);
    let n_part = scaled(200, cfg.scale);
    let n_orders = scaled(1500, cfg.scale);

    db.add(region());
    db.add(nation(&mut rng));
    db.add(supplier(n_supplier, &mut rng));
    db.add(customer(n_customer, cfg.skew, &mut rng));
    db.add(part(n_part, cfg.skew, &mut rng));
    db.add(partsupp(n_part, n_supplier, cfg.skew, &mut rng));
    let order_dates = {
        let t = orders(n_orders, n_customer, cfg.skew, &mut rng);
        let dates = t.column(t.col("o_orderdate")).to_vec();
        db.add(t);
        dates
    };
    db.add(lineitem(&order_dates, n_part, n_supplier, cfg.skew, &mut rng));
    db
}

fn pk(n: usize) -> Vec<i64> {
    (1..=n as i64).collect()
}

fn region() -> Table {
    let meta =
        TableMeta::new("region", 120, vec![ColumnMeta::new("r_regionkey", ColumnRole::PrimaryKey)]);
    Table::new(meta, vec![Column { name: "r_regionkey".into(), data: pk(5) }])
}

fn nation(rng: &mut StdRng) -> Table {
    let n = 25;
    let meta = TableMeta::new(
        "nation",
        130,
        vec![
            ColumnMeta::new("n_nationkey", ColumnRole::PrimaryKey),
            ColumnMeta::new("n_regionkey", ColumnRole::ForeignKey { table: "region".into() }),
        ],
    );
    let regionkey = (0..n).map(|i| (i as i64 % 5) + 1).collect::<Vec<_>>();
    let _ = rng; // nations are fixed, like the spec
    Table::new(
        meta,
        vec![
            Column { name: "n_nationkey".into(), data: pk(n) },
            Column { name: "n_regionkey".into(), data: regionkey },
        ],
    )
}

fn supplier(n: usize, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "supplier",
        160,
        vec![
            ColumnMeta::new("s_suppkey", ColumnRole::PrimaryKey),
            ColumnMeta::new("s_nationkey", ColumnRole::ForeignKey { table: "nation".into() }),
            ColumnMeta::new("s_acctbal", ColumnRole::Value { min: -999, max: 9999 }),
        ],
    );
    let nationkey = (0..n).map(|_| rng.random_range(1..=25)).collect();
    let acctbal = (0..n).map(|_| rng.random_range(-999..=9999)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "s_suppkey".into(), data: pk(n) },
            Column { name: "s_nationkey".into(), data: nationkey },
            Column { name: "s_acctbal".into(), data: acctbal },
        ],
    )
}

fn customer(n: usize, skew: f64, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "customer",
        180,
        vec![
            ColumnMeta::new("c_custkey", ColumnRole::PrimaryKey),
            ColumnMeta::new("c_nationkey", ColumnRole::ForeignKey { table: "nation".into() }),
            ColumnMeta::new("c_mktsegment", ColumnRole::Category { cardinality: 5 }),
            ColumnMeta::new("c_acctbal", ColumnRole::Value { min: -999, max: 9999 }),
        ],
    );
    let seg_dist = Zipf::new(5, skew * 0.5);
    let nationkey = (0..n).map(|_| rng.random_range(1..=25)).collect();
    let mktsegment = (0..n).map(|_| seg_dist.sample(rng) as i64).collect();
    let acctbal = (0..n).map(|_| rng.random_range(-999..=9999)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "c_custkey".into(), data: pk(n) },
            Column { name: "c_nationkey".into(), data: nationkey },
            Column { name: "c_mktsegment".into(), data: mktsegment },
            Column { name: "c_acctbal".into(), data: acctbal },
        ],
    )
}

fn part(n: usize, skew: f64, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "part",
        155,
        vec![
            ColumnMeta::new("p_partkey", ColumnRole::PrimaryKey),
            ColumnMeta::new("p_brand", ColumnRole::Category { cardinality: 25 }),
            ColumnMeta::new("p_type", ColumnRole::Category { cardinality: 150 }),
            ColumnMeta::new("p_size", ColumnRole::Value { min: 1, max: 50 }),
            ColumnMeta::new("p_retailprice", ColumnRole::Value { min: 900, max: 2100 }),
        ],
    );
    let brand_dist = Zipf::new(25, skew * 0.5);
    let type_dist = Zipf::new(150, skew * 0.5);
    let brand = (0..n).map(|_| brand_dist.sample(rng) as i64).collect();
    let ptype = (0..n).map(|_| type_dist.sample(rng) as i64).collect();
    let size = (0..n).map(|_| rng.random_range(1..=50)).collect();
    // Retail price correlates with part key, like the TPC-H spec formula.
    let price = (1..=n as i64).map(|k| 900 + (k % 1000) + (k / 10) % 200).collect();
    Table::new(
        meta,
        vec![
            Column { name: "p_partkey".into(), data: pk(n) },
            Column { name: "p_brand".into(), data: brand },
            Column { name: "p_type".into(), data: ptype },
            Column { name: "p_size".into(), data: size },
            Column { name: "p_retailprice".into(), data: price },
        ],
    )
}

fn partsupp(n_part: usize, n_supplier: usize, skew: f64, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "partsupp",
        144,
        vec![
            ColumnMeta::new("ps_partkey", ColumnRole::ForeignKey { table: "part".into() }),
            ColumnMeta::new("ps_suppkey", ColumnRole::ForeignKey { table: "supplier".into() }),
            ColumnMeta::new("ps_availqty", ColumnRole::Value { min: 1, max: 9999 }),
            ColumnMeta::new("ps_supplycost", ColumnRole::Value { min: 1, max: 1000 }),
        ],
    );
    // Four suppliers per part, like TPC-H.
    let n = n_part * 4;
    let supp_dist = Zipf::new(n_supplier as u64, skew);
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    for p in 1..=n_part as i64 {
        for _ in 0..4 {
            partkey.push(p);
            suppkey.push(supp_dist.sample_permuted(rng) as i64);
        }
    }
    let availqty = (0..n).map(|_| rng.random_range(1..=9999)).collect();
    let supplycost = (0..n).map(|_| rng.random_range(1..=1000)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "ps_partkey".into(), data: partkey },
            Column { name: "ps_suppkey".into(), data: suppkey },
            Column { name: "ps_availqty".into(), data: availqty },
            Column { name: "ps_supplycost".into(), data: supplycost },
        ],
    )
}

/// Orders are appended chronologically: `o_orderdate` grows with the row
/// position (plus noise), and the customer base grows over time, so early
/// orders reference only early customers. This positional correlation is
/// what real append-ordered tables exhibit, and it is a key source of
/// progress-estimator failure (work clustered by scan position).
fn orders(n: usize, n_customer: usize, skew: f64, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "orders",
        121,
        vec![
            ColumnMeta::new("o_orderkey", ColumnRole::PrimaryKey),
            ColumnMeta::new("o_custkey", ColumnRole::ForeignKey { table: "customer".into() }),
            ColumnMeta::new(
                "o_orderdate",
                ColumnRole::Date { min_day: DATE_MIN, max_day: DATE_MAX },
            ),
            ColumnMeta::new("o_totalprice", ColumnRole::Value { min: 800, max: 500_000 }),
            ColumnMeta::new("o_orderpriority", ColumnRole::Category { cardinality: 5 }),
            ColumnMeta::new("o_orderstatus", ColumnRole::Category { cardinality: 3 }),
        ],
    );
    let cust_dist = Zipf::new(n_customer as u64, skew);
    let prio_dist = Zipf::new(5, skew * 0.5);
    let custkey = (0..n)
        .map(|i| {
            // Customer base grows over time: order i can only reference
            // customers acquired so far.
            let frac = (i as f64 + 1.0) / n as f64;
            let cap = ((0.2 + 0.8 * frac) * n_customer as f64).ceil().max(1.0) as i64;
            let raw = cust_dist.sample_permuted(rng) as i64;
            (raw - 1) % cap + 1
        })
        .collect();
    let span = (DATE_MAX - DATE_MIN) as f64;
    let orderdate: Vec<i64> = (0..n)
        .map(|i| {
            let base = DATE_MIN as f64 + span * (i as f64 / n as f64);
            (base + rng.random_range(-120.0f64..120.0))
                .round()
                .clamp(DATE_MIN as f64, DATE_MAX as f64) as i64
        })
        .collect();
    let totalprice = (0..n).map(|_| rng.random_range(800..=500_000)).collect();
    let orderpriority = (0..n).map(|_| prio_dist.sample(rng) as i64).collect();
    let orderstatus = (0..n).map(|_| rng.random_range(1..=3)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "o_orderkey".into(), data: pk(n) },
            Column { name: "o_custkey".into(), data: custkey },
            Column { name: "o_orderdate".into(), data: orderdate },
            Column { name: "o_totalprice".into(), data: totalprice },
            Column { name: "o_orderpriority".into(), data: orderpriority },
            Column { name: "o_orderstatus".into(), data: orderstatus },
        ],
    )
}

fn lineitem(
    order_dates: &[i64],
    n_part: usize,
    n_supplier: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let meta = TableMeta::new(
        "lineitem",
        128,
        vec![
            ColumnMeta::new("l_orderkey", ColumnRole::ForeignKey { table: "orders".into() }),
            ColumnMeta::new("l_partkey", ColumnRole::ForeignKey { table: "part".into() }),
            ColumnMeta::new("l_suppkey", ColumnRole::ForeignKey { table: "supplier".into() }),
            ColumnMeta::new("l_quantity", ColumnRole::Value { min: 1, max: 50 }),
            ColumnMeta::new("l_extendedprice", ColumnRole::Value { min: 900, max: 110_000 }),
            ColumnMeta::new("l_discount", ColumnRole::Value { min: 0, max: 10 }),
            ColumnMeta::new(
                "l_shipdate",
                ColumnRole::Date { min_day: DATE_MIN, max_day: DATE_MAX + 122 },
            ),
            ColumnMeta::new(
                "l_receiptdate",
                ColumnRole::Date { min_day: DATE_MIN, max_day: DATE_MAX + 152 },
            ),
            ColumnMeta::new("l_returnflag", ColumnRole::Category { cardinality: 3 }),
            ColumnMeta::new("l_linestatus", ColumnRole::Category { cardinality: 2 }),
            ColumnMeta::new("l_shipmode", ColumnRole::Category { cardinality: 7 }),
        ],
    );
    let part_dist = Zipf::new(n_part as u64, skew);
    let supp_dist = Zipf::new(n_supplier as u64, skew);
    let qty_dist = Zipf::new(50, skew);
    let mode_dist = Zipf::new(7, skew * 0.5);

    let n_orders = order_dates.len();
    let mut orderkey = Vec::new();
    let mut partkey = Vec::new();
    let mut suppkey = Vec::new();
    let mut quantity: Vec<i64> = Vec::new();
    let mut extendedprice = Vec::new();
    let mut discount = Vec::new();
    let mut shipdate = Vec::new();
    let mut receiptdate = Vec::new();
    let mut returnflag = Vec::new();
    let mut linestatus = Vec::new();
    let mut shipmode = Vec::new();

    for (o, &order_date) in order_dates.iter().enumerate().take(n_orders) {
        let lines = rng.random_range(1..=7);
        // Parts are introduced over time: early orders draw from a smaller
        // part catalogue (position-correlated fan-out for part joins).
        let date_frac =
            ((order_date - DATE_MIN) as f64 / (DATE_MAX - DATE_MIN) as f64).clamp(0.0, 1.0);
        let part_cap = ((0.3 + 0.7 * date_frac) * n_part as f64).ceil().max(1.0) as i64;
        for _ in 0..lines {
            orderkey.push(o as i64 + 1);
            let p = (part_dist.sample_permuted(rng) as i64 - 1) % part_cap + 1;
            partkey.push(p);
            suppkey.push(supp_dist.sample_permuted(rng) as i64);
            let q = qty_dist.sample(rng) as i64;
            quantity.push(q);
            // Price correlates with quantity and part (correlation matters:
            // it is a real source of optimizer estimation error).
            extendedprice.push(q * (900 + (p % 1000) + (p / 10) % 200));
            discount.push(rng.random_range(0..=10));
            let sd = order_date + rng.random_range(1i64..=121);
            shipdate.push(sd);
            receiptdate.push(sd + rng.random_range(1i64..=30));
            // Return flag correlates with ship date (older lines returned).
            returnflag.push(if sd < DATE_MAX / 2 { rng.random_range(1..=2) } else { 3 });
            linestatus.push(if sd < DATE_MAX * 3 / 4 { 1 } else { 2 });
            shipmode.push(mode_dist.sample(rng) as i64);
        }
    }

    Table::new(
        meta,
        vec![
            Column { name: "l_orderkey".into(), data: orderkey },
            Column { name: "l_partkey".into(), data: partkey },
            Column { name: "l_suppkey".into(), data: suppkey },
            Column { name: "l_quantity".into(), data: quantity },
            Column { name: "l_extendedprice".into(), data: extendedprice },
            Column { name: "l_discount".into(), data: discount },
            Column { name: "l_shipdate".into(), data: shipdate },
            Column { name: "l_receiptdate".into(), data: receiptdate },
            Column { name: "l_returnflag".into(), data: returnflag },
            Column { name: "l_linestatus".into(), data: linestatus },
            Column { name: "l_shipmode".into(), data: shipmode },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_eight_tables() {
        let db = generate(&TpchConfig { scale: 0.5, skew: 1.0, seed: 1 });
        for t in
            ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"]
        {
            assert!(db.try_table(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn row_counts_scale() {
        let small = generate(&TpchConfig { scale: 1.0, skew: 0.0, seed: 1 });
        let large = generate(&TpchConfig { scale: 4.0, skew: 0.0, seed: 1 });
        assert_eq!(small.table("orders").rows(), 1500);
        assert_eq!(large.table("orders").rows(), 6000);
        let ratio = large.table("lineitem").rows() as f64 / small.table("lineitem").rows() as f64;
        assert!((ratio - 4.0).abs() < 0.3, "lineitem ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&TpchConfig { scale: 0.5, skew: 1.0, seed: 9 });
        let b = generate(&TpchConfig { scale: 0.5, skew: 1.0, seed: 9 });
        let la = a.table("lineitem");
        let lb = b.table("lineitem");
        assert_eq!(la.rows(), lb.rows());
        assert_eq!(la.column(la.col("l_partkey")), lb.column(lb.col("l_partkey")));
    }

    #[test]
    fn foreign_keys_reference_valid_rows() {
        let db = generate(&TpchConfig { scale: 0.5, skew: 2.0, seed: 3 });
        let li = db.table("lineitem");
        let n_orders = db.table("orders").rows() as i64;
        let n_part = db.table("part").rows() as i64;
        for &ok in li.column(li.col("l_orderkey")) {
            assert!(ok >= 1 && ok <= n_orders);
        }
        for &p in li.column(li.col("l_partkey")) {
            assert!(p >= 1 && p <= n_part);
        }
    }

    #[test]
    fn skew_concentrates_part_references() {
        let uniform = generate(&TpchConfig { scale: 1.0, skew: 0.0, seed: 3 });
        let skewed = generate(&TpchConfig { scale: 1.0, skew: 2.0, seed: 3 });
        let top_share = |db: &Database| {
            let li = db.table("lineitem");
            let col = li.column(li.col("l_partkey"));
            let mut counts = std::collections::HashMap::<i64, usize>::new();
            for &v in col {
                *counts.entry(v).or_default() += 1;
            }
            *counts.values().max().unwrap() as f64 / col.len() as f64
        };
        assert!(top_share(&skewed) > 10.0 * top_share(&uniform));
    }
}
