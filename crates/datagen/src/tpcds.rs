//! TPC-DS-shaped star-schema subset.
//!
//! The paper uses ~200 randomly chosen TPC-DS queries over a 10 GB
//! database. We generate the portion of the schema those reporting
//! queries exercise most: the `store_sales` fact table plus five
//! dimensions, with skewed foreign keys. (TPC-DS's official data is
//! *not* skewed between keys, but its dimensional selectivities are
//! highly non-uniform; the category/brand Zipf here plays that role.)

use crate::schema::{ColumnMeta, ColumnRole, TableMeta};
use crate::table::{Column, Database, Table};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct TpcdsConfig {
    /// Scale factor; `1.0` ≈ 3k fact rows.
    pub scale: f64,
    /// Skew applied to dimensional foreign keys.
    pub skew: f64,
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> Self {
        TpcdsConfig { scale: 1.0, skew: 1.0, seed: 42 }
    }
}

/// Number of days in the `date_dim` dimension (5 years).
pub const N_DATES: usize = 1826;

/// Generate the TPC-DS-shaped [`Database`].
pub fn generate(cfg: &TpcdsConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xd5_0bad_5eed);
    let mut db = Database::new(&format!("tpcds_sf{}", cfg.scale));

    let n_item = ((180.0 * cfg.scale) as usize).max(10);
    let n_store = ((2.0 * cfg.scale) as usize).max(2);
    let n_customer = ((100.0 * cfg.scale) as usize).max(10);
    let n_promo = ((3.0 * cfg.scale) as usize).max(2);
    let n_fact = ((2880.0 * cfg.scale) as usize).max(100);

    db.add(date_dim());
    db.add(item(n_item, cfg.skew, &mut rng));
    db.add(store(n_store, &mut rng));
    db.add(customer_dim(n_customer, &mut rng));
    db.add(promotion(n_promo, &mut rng));
    db.add(store_sales(n_fact, n_item, n_store, n_customer, n_promo, cfg.skew, &mut rng));
    db
}

fn pk(n: usize) -> Vec<i64> {
    (1..=n as i64).collect()
}

fn date_dim() -> Table {
    let meta = TableMeta::new(
        "date_dim",
        141,
        vec![
            ColumnMeta::new("d_date_sk", ColumnRole::PrimaryKey),
            ColumnMeta::new("d_year", ColumnRole::Value { min: 1999, max: 2003 }),
            ColumnMeta::new("d_moy", ColumnRole::Value { min: 1, max: 12 }),
            ColumnMeta::new("d_dom", ColumnRole::Value { min: 1, max: 31 }),
        ],
    );
    let mut year = Vec::with_capacity(N_DATES);
    let mut moy = Vec::with_capacity(N_DATES);
    let mut dom = Vec::with_capacity(N_DATES);
    for d in 0..N_DATES as i64 {
        year.push(1999 + d / 365);
        moy.push((d % 365) / 31 + 1);
        dom.push(d % 31 + 1);
    }
    Table::new(
        meta,
        vec![
            Column { name: "d_date_sk".into(), data: pk(N_DATES) },
            Column { name: "d_year".into(), data: year },
            Column { name: "d_moy".into(), data: moy },
            Column { name: "d_dom".into(), data: dom },
        ],
    )
}

fn item(n: usize, skew: f64, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "item",
        281,
        vec![
            ColumnMeta::new("i_item_sk", ColumnRole::PrimaryKey),
            ColumnMeta::new("i_category", ColumnRole::Category { cardinality: 10 }),
            ColumnMeta::new("i_brand", ColumnRole::Category { cardinality: 100 }),
            ColumnMeta::new("i_current_price", ColumnRole::Value { min: 1, max: 300 }),
        ],
    );
    let cat_dist = Zipf::new(10, (skew * 0.7).max(0.3));
    let brand_dist = Zipf::new(100, (skew * 0.7).max(0.3));
    let category: Vec<i64> = (0..n).map(|_| cat_dist.sample(rng) as i64).collect();
    let brand = (0..n).map(|_| brand_dist.sample(rng) as i64).collect();
    // Price correlates with category: categories have price bands.
    let price = category.iter().map(|&c| c * 25 + rng.random_range(1i64..=50)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "i_item_sk".into(), data: pk(n) },
            Column { name: "i_category".into(), data: category },
            Column { name: "i_brand".into(), data: brand },
            Column { name: "i_current_price".into(), data: price },
        ],
    )
}

fn store(n: usize, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "store",
        263,
        vec![
            ColumnMeta::new("s_store_sk", ColumnRole::PrimaryKey),
            ColumnMeta::new("s_state", ColumnRole::Category { cardinality: 20 }),
        ],
    );
    let state = (0..n).map(|_| rng.random_range(1..=20)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "s_store_sk".into(), data: pk(n) },
            Column { name: "s_state".into(), data: state },
        ],
    )
}

fn customer_dim(n: usize, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "customer_dim",
        132,
        vec![
            ColumnMeta::new("c_customer_sk", ColumnRole::PrimaryKey),
            ColumnMeta::new("c_birth_year", ColumnRole::Value { min: 1930, max: 2000 }),
            ColumnMeta::new("c_gender", ColumnRole::Category { cardinality: 2 }),
        ],
    );
    let birth = (0..n).map(|_| rng.random_range(1930..=2000)).collect();
    let gender = (0..n).map(|_| rng.random_range(1..=2)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "c_customer_sk".into(), data: pk(n) },
            Column { name: "c_birth_year".into(), data: birth },
            Column { name: "c_gender".into(), data: gender },
        ],
    )
}

fn promotion(n: usize, rng: &mut StdRng) -> Table {
    let meta = TableMeta::new(
        "promotion",
        124,
        vec![
            ColumnMeta::new("p_promo_sk", ColumnRole::PrimaryKey),
            ColumnMeta::new("p_channel", ColumnRole::Category { cardinality: 4 }),
        ],
    );
    let channel = (0..n).map(|_| rng.random_range(1..=4)).collect();
    Table::new(
        meta,
        vec![
            Column { name: "p_promo_sk".into(), data: pk(n) },
            Column { name: "p_channel".into(), data: channel },
        ],
    )
}

#[allow(clippy::too_many_arguments)]
fn store_sales(
    n: usize,
    n_item: usize,
    n_store: usize,
    n_customer: usize,
    n_promo: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let meta = TableMeta::new(
        "store_sales",
        164,
        vec![
            ColumnMeta::new("ss_sold_date_sk", ColumnRole::ForeignKey { table: "date_dim".into() }),
            ColumnMeta::new("ss_item_sk", ColumnRole::ForeignKey { table: "item".into() }),
            ColumnMeta::new("ss_store_sk", ColumnRole::ForeignKey { table: "store".into() }),
            ColumnMeta::new(
                "ss_customer_sk",
                ColumnRole::ForeignKey { table: "customer_dim".into() },
            ),
            ColumnMeta::new("ss_promo_sk", ColumnRole::ForeignKey { table: "promotion".into() }),
            ColumnMeta::new("ss_quantity", ColumnRole::Value { min: 1, max: 100 }),
            ColumnMeta::new("ss_ext_sales_price", ColumnRole::Value { min: 1, max: 30_000 }),
        ],
    );
    let item_dist = Zipf::new(n_item as u64, skew);
    let cust_dist = Zipf::new(n_customer as u64, skew);

    let mut sold_date = Vec::with_capacity(n);
    let mut item_sk = Vec::with_capacity(n);
    let mut store_sk = Vec::with_capacity(n);
    let mut customer_sk = Vec::with_capacity(n);
    let mut promo_sk = Vec::with_capacity(n);
    let mut quantity: Vec<i64> = Vec::with_capacity(n);
    let mut ext_price = Vec::with_capacity(n);
    for i in 0..n {
        // Fact rows are appended chronologically with jitter.
        let base = N_DATES as f64 * (i as f64 / n as f64);
        sold_date.push(
            (base + rng.random_range(-60.0f64..60.0)).round().clamp(1.0, N_DATES as f64) as i64,
        );
        let it = item_dist.sample_permuted(rng) as i64;
        item_sk.push(it);
        store_sk.push(rng.random_range(1..=n_store as i64));
        customer_sk.push(cust_dist.sample_permuted(rng) as i64);
        promo_sk.push(rng.random_range(1..=n_promo as i64));
        let q = rng.random_range(1..=100);
        quantity.push(q);
        // Revenue correlates with item (via its price band) and quantity.
        ext_price.push(q * ((it % 10 + 1) * 25 + 10));
    }
    Table::new(
        meta,
        vec![
            Column { name: "ss_sold_date_sk".into(), data: sold_date },
            Column { name: "ss_item_sk".into(), data: item_sk },
            Column { name: "ss_store_sk".into(), data: store_sk },
            Column { name: "ss_customer_sk".into(), data: customer_sk },
            Column { name: "ss_promo_sk".into(), data: promo_sk },
            Column { name: "ss_quantity".into(), data: quantity },
            Column { name: "ss_ext_sales_price".into(), data: ext_price },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_star_schema() {
        let db = generate(&TpcdsConfig { scale: 0.5, skew: 1.0, seed: 2 });
        for t in ["date_dim", "item", "store", "customer_dim", "promotion", "store_sales"] {
            assert!(db.try_table(t).is_some(), "missing {t}");
        }
        assert!(db.table("store_sales").rows() >= 1000);
    }

    #[test]
    fn fact_fks_valid() {
        let db = generate(&TpcdsConfig { scale: 0.5, skew: 2.0, seed: 2 });
        let ss = db.table("store_sales");
        let n_item = db.table("item").rows() as i64;
        for &v in ss.column(ss.col("ss_item_sk")) {
            assert!(v >= 1 && v <= n_item, "item fk {v} out of range");
        }
        let n_date = db.table("date_dim").rows() as i64;
        for &v in ss.column(ss.col("ss_sold_date_sk")) {
            assert!(v >= 1 && v <= n_date, "date fk {v} out of range");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&TpcdsConfig::default());
        let b = generate(&TpcdsConfig::default());
        let ta = a.table("store_sales");
        let tb = b.table("store_sales");
        assert_eq!(ta.column(0), tb.column(0));
    }
}
