//! Zipfian sampling.
//!
//! The paper's skewed TPC-H databases are produced with a `dbgen` variant
//! that draws column values from a Zipf(θ) distribution: value rank `k`
//! (1-based) has probability proportional to `1/k^θ`. `θ = 0` degenerates
//! to the uniform distribution; the paper uses Z ∈ {0, 1, 2}.
//!
//! We precompute the cumulative distribution once and sample by binary
//! search, which is exact and fast for the domain sizes used here
//! (≤ a few hundred thousand distinct values).

use rand::{Rng, RngExt};

/// A Zipf(θ) sampler over the 1-based rank domain `1..=n`.
///
/// Ranks are *not* shuffled: rank 1 is the most frequent value. Callers
/// that want skew without an ordered hot-spot should compose with a seeded
/// permutation (see [`Zipf::sample_permuted`]).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    /// Cumulative probabilities; `cdf[k-1] = P(X <= k)`. Empty when θ = 0
    /// (uniform fast path).
    cdf: Vec<f64>,
    /// Multiplicative-hash parameter for the permuted variant.
    perm_mult: u64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative / non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf skew must be finite and non-negative, got {theta}"
        );
        let cdf = if theta == 0.0 {
            Vec::new()
        } else {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0f64;
            for k in 1..=n {
                acc += 1.0 / (k as f64).powf(theta);
                cdf.push(acc);
            }
            let total = acc;
            for v in &mut cdf {
                *v /= total;
            }
            cdf
        };
        // Odd multiplier for an invertible multiplicative permutation of the
        // domain; derived from the golden ratio like SplitMix64.
        let perm_mult = 0x9E37_79B9_7F4A_7C15 | 1;
        Zipf { n, theta, cdf, perm_mult }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `1..=n`; rank 1 is the most probable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.cdf.is_empty() {
            return rng.random_range(1..=self.n);
        }
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf[i] >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n)
    }

    /// Draw a skewed value whose *identity* is pseudo-randomly spread over
    /// the domain (the hot value is not `1`). Useful for foreign keys, where
    /// a skewed-but-scattered referencing pattern is realistic.
    pub fn sample_permuted<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        // A fixed bijection on 0..n via multiply-mod when n is not a power of
        // two would be biased; instead hash and fold, accepting collisions in
        // *identity* only (frequency shape is preserved because the map is a
        // fixed function of rank).
        let hashed = rank.wrapping_mul(self.perm_mult).rotate_left(31);
        (hashed % self.n) + 1
    }

    /// Expected probability of rank `k` (1-based). Exposed for tests.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        if self.cdf.is_empty() {
            1.0 / self.n as f64
        } else {
            let hi = self.cdf[(k - 1) as usize];
            let lo = if k == 1 { 0.0 } else { self.cdf[(k - 2) as usize] };
            hi - lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "uniform bucket off: {c}");
        }
    }

    #[test]
    fn rank_one_dominates_under_skew() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut one = 0u32;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample(&mut rng) == 1 {
                one += 1;
            }
        }
        let expected = z.pmf(1) * trials as f64;
        assert!((one as f64 - expected).abs() < expected * 0.15);
        // Under θ=1 over 1000 values, rank 1 has ~13% mass.
        assert!(one as f64 / trials as f64 > 0.10);
    }

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(57, theta);
            let total: f64 = (1..=57).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta} total={total}");
        }
    }

    #[test]
    fn higher_skew_concentrates_more() {
        let z1 = Zipf::new(500, 1.0);
        let z2 = Zipf::new(500, 2.0);
        assert!(z2.pmf(1) > z1.pmf(1));
        assert!(z2.pmf(500) < z1.pmf(500));
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1..=3).contains(&v));
            let p = z.sample_permuted(&mut rng);
            assert!((1..=3).contains(&p));
        }
    }

    #[test]
    fn permuted_preserves_skew_mass() {
        // The permuted variant must still have a single dominant value.
        let z = Zipf::new(997, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::<u64, u32>::new();
        for _ in 0..20_000 {
            *counts.entry(z.sample_permuted(&mut rng)).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max as f64 / 20_000.0 > 0.4, "hot value mass lost: {max}");
        // And the hot value should not be rank 1 itself.
        let hot = counts.iter().max_by_key(|(_, &c)| c).map(|(&v, _)| v).unwrap();
        assert_ne!(hot, 1);
    }
}
