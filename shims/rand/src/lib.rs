//! Offline stand-in for the subset of the `rand` crate that prosel uses.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors this minimal, dependency-free implementation under the
//! same crate name. It covers exactly the surface the sources touch:
//!
//! * [`rngs::StdRng`] — a seeded xoshiro256** generator;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — the core `next_u64` / `next_f64` interface;
//! * [`RngExt`] — `random`, `random_range`, `random_bool` conveniences
//!   (named after the rand 0.9 API).
//!
//! Statistical quality matters here only insofar as the datagen crates need
//! well-spread deterministic streams; xoshiro256** (seeded via SplitMix64)
//! comfortably clears that bar. Everything is deterministic given the seed.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::{Rng, SeedableRng};

    /// xoshiro256** seeded from a single `u64` via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types constructible from a seed. Only the `u64` entry point is needed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core generator interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods (rand 0.9 naming), blanket-implemented for
/// every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` over its "standard" domain (full range for
    /// integers, `[0, 1)` for floats).
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Value types with a canonical "just give me one" distribution.
pub trait StandardValue {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardValue for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl StandardValue for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, width]; modulo bias is negligible for the domain
// sizes used in this workspace (≤ a few hundred thousand).
fn uniform_below_inclusive<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == u64::MAX {
        rng.next_u64()
    } else {
        rng.next_u64() % (width + 1)
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64).wrapping_sub(1);
                self.start.wrapping_add(uniform_below_inclusive(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_below_inclusive(rng, width) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = rng.random_range(1u64..=3);
            assert!((1..=3).contains(&u));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "bucket {c}");
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 - 25_000.0).abs() < 1_000.0, "hits {hits}");
    }
}
