//! Offline stand-in for the subset of the `proptest` crate that prosel's
//! property tests use.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors this minimal implementation under the same crate name.
//! It supports:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute
//!   and `name(arg in strategy, ...)` test functions;
//! * range strategies over integers and floats (`-50i64..50`,
//!   `0.0f64..1.0`, inclusive variants);
//! * [`prelude::any`] for primitive types;
//! * [`collection::vec`] and [`option::of`] combinators;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: each test runs a fixed number of deterministic cases (the
//! RNG is seeded from the test body's strategy expressions, so runs are
//! reproducible), and a failing case panics with the values baked into the
//! assertion message.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runtime configuration. Mirrors `proptest::test_runner::Config` in the
/// one field the tests touch.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the seed suite fast while
        // still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;
    pub use crate::ProptestConfig;
    pub use crate::TestRng;
}

/// The RNG handed to strategies. A thin newtype so the `Strategy` trait is
/// not generic over the generator.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    type Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

pub mod strategy {
    pub use crate::Strategy;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for "any value of `T`" — uniform over the full domain, with the
/// edge cases mixed in explicitly (real proptest biases toward them too).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 cases draw an edge value.
                if rng.inner().random_range(0u32..8) == 0 {
                    match rng.inner().random_range(0u32..3) {
                        0 => 0 as $t,
                        1 => <$t>::MIN,
                        _ => <$t>::MAX,
                    }
                } else {
                    rng.inner().random()
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner().random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner().random()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

pub mod arbitrary {
    pub use crate::{any, Arbitrary};
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(strategy, 0..24)` — a vector whose length is drawn from `size`
    /// and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner().random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — `None` in roughly a quarter of cases, `Some(value)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.inner().random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a over the test name, used to give every generated test its own
/// deterministic RNG stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = $cfg:expr;
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::seeded($crate::seed_for(stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = __run() {
                        panic!(
                            "proptest case {}/{} for `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in -50i64..50, b in 1u64..=9, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..=9).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_option(v in crate::collection::vec(any::<i64>(), 0..24), o in crate::option::of(1u64..50)) {
            prop_assert!(v.len() < 24);
            if let Some(x) = o {
                prop_assert!((1..50).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::seeded(7);
        let mut b = crate::TestRng::seeded(7);
        let s = crate::collection::vec(any::<u64>(), 1..10);
        for _ in 0..16 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
