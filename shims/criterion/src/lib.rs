//! Offline stand-in for the subset of the `criterion` crate that prosel's
//! benches use.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors this minimal implementation under the same crate name.
//! Bench targets compile unchanged (`criterion_group!` / `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`) and, when actually run via `cargo bench`, execute each
//! closure a bounded number of times and print mean wall-clock per
//! iteration. There is no statistical analysis, warm-up tuning, or HTML
//! report — swap in the real crate for that.
//!
//! Two environment hooks feed the repo's perf-trajectory CI:
//!
//! * `PROSEL_BENCH_JSON=<path>` — append one JSON line per timed bench
//!   (`{"name":…,"mean_ns":…,"iters":…}`) to `<path>`; the
//!   `bench_report` bin of `prosel-bench` folds these into the
//!   `BENCH_<sha>.json` trajectory artifact.
//! * `PROSEL_BENCH_QUICK=<n>` — clamp every bench to at most `n` timed
//!   iterations (the CI "quick profile"; per-bench `sample_size` calls
//!   cannot raise it back).

use std::fmt;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// How work is scaled when reporting (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The CI quick-profile clamp: `min(requested, $PROSEL_BENCH_QUICK)`.
fn effective_samples(requested: usize) -> usize {
    match std::env::var("PROSEL_BENCH_QUICK").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(q) => requested.min(q.max(1)),
        None => requested,
    }
}

/// One machine-readable sample as a JSON line (JSONL record).
fn sample_line(name: &str, mean_ns: f64, iters: usize) -> String {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    format!("{{\"name\":\"{escaped}\",\"mean_ns\":{mean_ns},\"iters\":{iters}}}\n")
}

/// Append one machine-readable sample line to `$PROSEL_BENCH_JSON`, if
/// set. Failures to write are reported but never fail the bench.
fn report_sample(name: &str, mean_ns: f64, iters: usize) {
    let Ok(path) = std::env::var("PROSEL_BENCH_JSON") else { return };
    let line = sample_line(name, mean_ns, iters);
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = write {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Fully qualified bench name (`group/function/param`), carried so the
    /// timing loop can attribute its JSON sample line.
    name: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then `samples` timed iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / self.samples as u32;
        println!("    {:>12?} /iter ({} iters)", per_iter, self.samples);
        report_sample(&self.name, elapsed.as_nanos() as f64 / self.samples as f64, self.samples);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().id;
        println!("bench: {name}");
        let mut b = Bencher { samples: effective_samples(self.sample_size), name };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("group {}: throughput {:?}", self.name, throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().id);
        println!("bench: {name}");
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { samples: effective_samples(samples), name };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into().id);
        println!("bench: {name}");
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { samples: effective_samples(samples), name };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_lines_are_valid_jsonl() {
        let line = sample_line("group/fn/3", 1234.5, 10);
        assert_eq!(line, "{\"name\":\"group/fn/3\",\"mean_ns\":1234.5,\"iters\":10}\n");
        let line = sample_line("we\"ird\\name\n", 1.0, 1);
        assert!(line.contains("we\\\"ird\\\\name "), "escaped: {line}");
    }

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.sample_size(2).bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls >= 2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(5));
        group.bench_with_input(BenchmarkId::new("f", 1), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
