//! Offline stand-in for the subset of the `criterion` crate that prosel's
//! benches use.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors this minimal implementation under the same crate name.
//! Bench targets compile unchanged (`criterion_group!` / `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`) and, when actually run via `cargo bench`, execute each
//! closure a bounded number of times and print mean wall-clock per
//! iteration. There is no statistical analysis, warm-up tuning, or HTML
//! report — swap in the real crate for that.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// How work is scaled when reporting (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then `samples` timed iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let per_iter = start.elapsed() / self.samples as u32;
        println!("    {:>12?} /iter ({} iters)", per_iter, self.samples);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}", id.into().id);
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("group {}: throughput {:?}", self.name, throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { samples };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench: {}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { samples };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.sample_size(2).bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls >= 2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(5));
        group.bench_with_input(BenchmarkId::new("f", 1), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
