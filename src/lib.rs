//! # prosel — robust SQL progress estimation via statistical estimator selection
//!
//! A from-scratch Rust reproduction of König, Ding, Chaudhuri & Narasayya,
//! *"A Statistical Approach Towards Robust Progress Estimation"* (VLDB 2011).
//!
//! No single SQL progress estimator is robust across the variety of queries,
//! plans and data distributions seen in practice. This library implements
//! the paper's remedy: per-pipeline *estimator selection* driven by MART
//! (gradient-boosted regression tree) models that predict each candidate
//! estimator's error from cheap static plan features and dynamic runtime
//! features, then pick the estimator with the smallest predicted error.
//!
//! This facade crate re-exports the entire workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`datagen`] | `prosel-datagen` | synthetic skewed TPC-H/TPC-DS-shaped and "real-world" databases |
//! | [`engine`] | `prosel-engine` | Volcano-model execution simulator, GetNext counters, virtual clock, pipelines, observation traces |
//! | [`planner`] | `prosel-planner` | histogram statistics, cardinality estimation, physical plan construction, workload generators |
//! | [`estimators`] | `prosel-estimators` | DNE, TGN, LUO, PMAX, SAFE, BATCHDNE, DNESEEK, TGNINT + oracle models |
//! | [`mart`] | `prosel-mart` | stochastic gradient-boosted regression trees |
//! | [`core`] | `prosel-core` | feature extraction, estimator-selection models, end-to-end progress monitor |
//! | [`monitor`] | `prosel-monitor` | **online** monitor: live traces in, incremental estimation + dynamic re-selection out, wall-clock ETA (`remaining_time` / `progress_at_deadline`) |
//! | [`learn`] | `prosel-learn` | **online learning**: harvested-run training buffer, background retraining, versioned selector hot-swap |
//! | [`obs`] | `prosel-obs` | **observability**: wait-free metrics registry, typed trace ring, checksummed text exposition — scraped live off the monitor/learn stack |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use prosel::core::pipeline_runs::collect_workload_records;
//! use prosel::core::selection::{EstimatorSelector, SelectorConfig};
//! use prosel::core::training::TrainingSet;
//! use prosel::planner::workload::{self, WorkloadKind};
//!
//! // 1. Build a database + workload, execute it, and gather per-pipeline
//! //    training records (features + per-estimator errors).
//! let spec = workload::WorkloadSpec::new(WorkloadKind::TpchLike, 0x5eed).with_queries(50);
//! let records = collect_workload_records(&spec).expect("workload runs");
//!
//! // 2. Train the selector.
//! let train = TrainingSet::from_records(&records);
//! let selector = EstimatorSelector::train(&train, &SelectorConfig::default());
//!
//! // 3. Use it: pick the best estimator for a new pipeline's features.
//! let choice = selector.select(&records[0].features);
//! println!("selected estimator: {choice:?}");
//! ```

pub use prosel_core as core;
pub use prosel_datagen as datagen;
pub use prosel_engine as engine;
pub use prosel_estimators as estimators;
pub use prosel_learn as learn;
pub use prosel_mart as mart;
pub use prosel_monitor as monitor;
pub use prosel_obs as obs;
pub use prosel_planner as planner;
