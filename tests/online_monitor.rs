//! Online monitoring integration: live traces through the monitor must
//! reproduce the post-hoc estimator stack exactly, and the served
//! progress must respect the monitor invariants.

use prosel::core::pipeline_runs::{collect_from_workload, CollectConfig};
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{
    run_concurrent_tapped, run_plan, run_plan_tapped, Catalog, ConcurrentConfig, ExecConfig,
    QueryRun, TraceEvent,
};
use prosel::estimators::kinds::EstimatorKind;
use prosel::estimators::{IncrementalObs, PipelineObs, TraceCtx, ONLINE_KINDS};
use prosel::mart::BoostParams;
use prosel::monitor::{MonitorBuilder, MonitorConfig, ProgressMonitor};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

/// Every estimator kind, oracles included.
fn all_kinds() -> Vec<EstimatorKind> {
    let mut kinds = ONLINE_KINDS.to_vec();
    kinds.push(EstimatorKind::GetNextOracle);
    kinds.push(EstimatorKind::BytesOracle);
    kinds
}

/// Assert that the monitor's incremental observation state reproduces the
/// batch `PipelineObs` curves bit for bit on every pipeline of `run`.
fn assert_equivalent(monitor: &ProgressMonitor, query: usize, run: &QueryRun, label: &str) {
    let ctx = TraceCtx::new(run);
    for pid in 0..run.pipelines.len() {
        let inc = monitor.observation(query, pid).expect("registered pipeline");
        match PipelineObs::with_ctx(run, pid, &ctx) {
            None => assert!(
                inc.is_empty(),
                "{label}: pipeline {pid} unobserved post-hoc but online has {} obs",
                inc.len()
            ),
            Some(batch) => {
                assert_eq!(
                    inc.times(),
                    &batch.times[..],
                    "{label}: observation set mismatch on pipeline {pid}"
                );
                assert_eq!(inc.window(), batch.window, "{label}: window mismatch, pipeline {pid}");
                for kind in all_kinds() {
                    let online = inc.curve(kind);
                    let offline = batch.curve(kind);
                    assert_eq!(
                        online.len(),
                        offline.len(),
                        "{label}: {kind} curve length mismatch on pipeline {pid}"
                    );
                    for (j, (a, b)) in online.iter().zip(&offline).enumerate() {
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "{label}: {kind} differs at pipeline {pid} obs {j}: \
                             online {a:?} vs batch {b:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn online_offline_equivalence_tpch() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x011).with_queries(12);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let (tap, rx) = std::sync::mpsc::channel();
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
        monitor.register(qi, &plan);
        let cfg = ExecConfig { seed: qi as u64, ..ExecConfig::default() };
        let run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
        monitor.drain(&rx);
        assert_eq!(monitor.is_finished(qi), Some(true));
        assert_equivalent(&monitor, qi, &run, &format!("tpch q{qi}"));
    }
}

#[test]
fn online_offline_equivalence_survives_thinning() {
    // A tiny snapshot budget forces repeated buffer thinning; the monitor
    // must track the engine's bounded trace through every halving.
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 77).with_queries(6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut thinned = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let (tap, rx) = std::sync::mpsc::channel();
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Tgn).build_monitor().expect("build");
        monitor.register(qi, &plan);
        let cfg = ExecConfig {
            max_snapshots: 32,
            initial_snapshot_interval: 5.0,
            seed: qi as u64,
            ..ExecConfig::default()
        };
        let run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
        while let Ok(ev) = rx.try_recv() {
            if matches!(ev, TraceEvent::Thinned { .. }) {
                thinned += 1;
            }
            monitor.ingest(ev);
        }
        assert_equivalent(&monitor, qi, &run, &format!("thinning q{qi}"));
    }
    assert!(thinned > 0, "the tiny budget should have forced thinning");
}

#[test]
fn monitor_progress_is_monotone_and_pins_to_one() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 404).with_queries(8);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let (tap, rx) = std::sync::mpsc::channel();
        // DNE is monotone (driver counters only grow against fixed
        // totals), so the served query progress must be too.
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
        monitor.register(qi, &plan);
        let run = run_plan_tapped(&catalog, &plan, &ExecConfig::default(), qi, tap);
        let mut prev = 0.0f64;
        while let Ok(ev) = rx.try_recv() {
            monitor.ingest(ev);
            let p = monitor.query_progress(qi).expect("registered");
            assert!((0.0..=1.0).contains(&p), "q{qi}: progress {p} out of range");
            assert!(p >= prev - 1e-12, "q{qi}: DNE-monitored progress regressed: {prev} -> {p}");
            prev = p;
        }
        assert_eq!(
            monitor.query_progress(qi),
            Some(1.0),
            "q{qi}: progress must pin to exactly 1.0 at the final snapshot"
        );
        // Post-hoc, the monotone estimators' committed curves agree.
        for pid in 0..run.pipelines.len() {
            let inc = monitor.observation(qi, pid).expect("pipeline");
            for kind in [EstimatorKind::Dne, EstimatorKind::GetNextOracle] {
                let c = inc.curve(kind);
                for w2 in c.windows(2) {
                    assert!(w2[0] <= w2[1] + 1e-12, "q{qi} p{pid}: {kind} curve regressed");
                }
            }
        }
    }
}

#[test]
fn selector_driven_monitor_end_to_end() {
    // Train a small selector, then monitor a concurrent batch with online
    // re-selection: curves still match batch exactly (selection never
    // perturbs observation state), switches are well-formed, and the
    // serving surface stays sane throughout.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 21).with_queries(20).with_scale(0.5);
    let w = materialize(&spec);
    let records = collect_from_workload(&w, &CollectConfig::default()).expect("records");
    let train = TrainingSet::from_records(&records);
    let selector = EstimatorSelector::train(
        &train,
        &SelectorConfig::default().with_boost(BoostParams::fast()),
    );

    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().take(6).map(|q| builder.build(q).expect("plan")).collect();

    let (tap, rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::with_selector(selector)
        .config(MonitorConfig { reselect_every: 3, ..MonitorConfig::default() })
        .build_monitor()
        .expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        monitor.register(qi, plan);
    }
    let runs = run_concurrent_tapped(&catalog, &plans, &ConcurrentConfig::default(), tap);
    while let Ok(ev) = rx.try_recv() {
        let q = ev.query();
        monitor.ingest(ev);
        let status = monitor.status(q).expect("registered");
        assert!((0.0..=1.0).contains(&status.progress));
        for p in &status.pipelines {
            assert!((0.0..=1.0).contains(&p.progress));
        }
    }
    for (qi, run) in runs.iter().enumerate() {
        assert_eq!(monitor.is_finished(qi), Some(true));
        assert_equivalent(&monitor, qi, run, &format!("selector q{qi}"));
        let switches = monitor.switch_history(qi).expect("registered");
        for s in switches {
            assert_ne!(s.from, s.to, "q{qi}: no-op switch logged");
        }
        // Initial choices came from static features; current choice must
        // equal the initial one composed with the logged switches.
        for pid in 0..run.pipelines.len() {
            let mut k = monitor.initial_choice(qi, pid).expect("pipeline");
            for s in switches.iter().filter(|s| s.pipeline == pid) {
                assert_eq!(s.from, k, "q{qi} p{pid}: switch chain broken");
                k = s.to;
            }
            assert_eq!(monitor.current_choice(qi, pid), Some(k));
        }
    }
}

#[test]
fn replay_equivalence_all_workload_kinds() {
    // The pure-estimators replay path (no live tap) must agree with batch
    // too — it is the reference implementation of the streaming protocol.
    for (kind, seed) in [(WorkloadKind::TpchLike, 5u64), (WorkloadKind::TpcdsLike, 6u64)] {
        let spec = WorkloadSpec::new(kind, seed).with_queries(6).with_scale(0.5);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).expect("plan");
            let run = run_plan(&catalog, &plan, &ExecConfig::default());
            let ctx = TraceCtx::new(&run);
            for pid in 0..run.pipelines.len() {
                let batch = PipelineObs::with_ctx(&run, pid, &ctx);
                let inc = IncrementalObs::replay_shared(&run, pid, &ctx);
                match (batch, inc) {
                    (None, None) => {}
                    (Some(batch), Some(inc)) => {
                        for k in all_kinds() {
                            assert_eq!(
                                inc.curve(k),
                                batch.curve(k),
                                "{kind:?} q{qi} p{pid}: {k} replay mismatch"
                            );
                        }
                    }
                    (b, i) => panic!(
                        "{kind:?} q{qi} p{pid}: batch {:?} vs replay {:?} observation presence",
                        b.map(|o| o.len()),
                        i.map(|o| o.len())
                    ),
                }
            }
        }
    }
}
