//! The open-loop traffic soak: the checked-in quick spec drives ≥ 10k
//! queries through a multi-shard [`prosel_monitor::MonitorService`] and
//! every scenario invariant must hold with zero violations:
//!
//! * no arrival is dropped or duplicated — every scheduled query is
//!   registered exactly once and reaches `Finished`;
//! * progress/ETA reads of a registered query never fail;
//! * selector-swap epochs are strictly monotone;
//! * the shard counters obey the event conservation law (every sent
//!   event was ingested by exactly one shard, none unroutable, none
//!   defensively dropped) and no query state leaks past the drain;
//! * the whole run is deterministic: two drives of one spec produce
//!   byte-identical schedules, identical read-value digests and
//!   identical invariant reports. Wall-clock latencies are the only
//!   run-to-run variation, and they are reported, never asserted.

use prosel_bench::traffic::{
    drive, schedule, schedule_text, ArrivalProcess, TemplateSet, TrafficSpec,
};

#[test]
fn quick_soak_is_clean_and_deterministic_at_ten_thousand_queries() {
    let spec = TrafficSpec::from_toml(include_str!("../crates/bench/specs/traffic_quick.toml"))
        .expect("checked-in quick spec parses");
    assert!(spec.num_queries >= 10_000, "the quick soak must drive >= 10k queries");
    assert!(spec.n_shards > 1, "the soak must exercise a multi-shard service");

    // The schedule alone is already byte-reproducible.
    let text = schedule_text(&schedule(&spec));
    assert_eq!(text, schedule_text(&schedule(&spec)));
    assert_eq!(text.lines().count(), spec.num_queries);

    let templates = TemplateSet::build(&spec);
    let a = drive(&spec, &templates);

    assert_eq!(a.metrics.violations, Vec::<String>::new(), "soak invariants violated");
    let c = &a.metrics.counters;
    assert_eq!(c.arrivals as usize, spec.num_queries);
    assert_eq!(c.registered, c.arrivals, "every arrival admitted exactly once");
    assert_eq!(c.finished, c.arrivals, "every registered query reached Finished");
    assert!(c.max_in_flight <= spec.max_concurrency as u64);
    assert!(c.reads > 0 && c.swaps > 0, "the scenario must read and swap under load");
    assert_eq!(a.metrics.read_latency.count() as u64, c.reads);

    // Shard-side conservation, service-wide.
    assert_eq!(a.stats.events_ingested, c.events_sent);
    assert_eq!(a.stats.events_unroutable, 0);
    assert_eq!(a.stats.queries_dropped, 0);
    assert_eq!(a.stats.queries_finished, c.finished);
    assert_eq!(a.stats.registered, 0, "no query state may leak past the drain");

    // The same conservation law, asserted from the metrics registry:
    // `ShardStats` is a view over the per-shard counters, so summing the
    // registry series must reproduce both the stats readout and the
    // driver's own counts — one increment site per event, no drift.
    let obs = &a.obs;
    assert_eq!(obs.sum_counters("_events_ingested_total"), c.events_sent);
    assert_eq!(obs.sum_counters("_events_ingested_total"), a.stats.events_ingested);
    assert_eq!(obs.sum_counters("_events_unroutable_total"), 0);
    assert_eq!(obs.sum_counters("_events_rejected_total"), 0);
    assert_eq!(obs.sum_counters("_queries_dropped_total"), 0);
    assert_eq!(obs.sum_counters("_queries_finished_total"), c.finished);
    assert_eq!(obs.sum_counters("_admitted_total"), c.registered);
    assert_eq!(obs.counter("tap_events_total"), Some(c.events_sent), "tap counted every send");
    assert_eq!(obs.counter("tap_bytes_total"), Some(c.event_bytes), "tap counted every byte");
    assert_eq!(obs.counter("service_reads_total"), Some(c.reads));
    // The driver scrapes on the spec cadence; the final scrape is the
    // registry's whole-run view and must dominate every earlier one.
    assert_eq!(a.obs_scrapes.len() as u64, c.finished / spec.scrape_every as u64);
    for earlier in &a.obs_scrapes {
        assert!(
            earlier.sum_counters("_events_ingested_total")
                <= obs.sum_counters("_events_ingested_total"),
            "scrapes of monotone counters must be monotone"
        );
    }
    // The exposition codec round-trips the final scrape bit-identically.
    let text = obs.render_text();
    let parsed = prosel_obs::MetricsSnapshot::parse_text(&text).expect("own exposition parses");
    assert_eq!(parsed.render_text(), text, "exposition must round-trip bit-identically");

    // The full deterministic transcript — counters, digests, shard stats —
    // must repeat exactly on a second drive of the same spec.
    let b = drive(&spec, &templates);
    assert_eq!(a.invariant_report(), b.invariant_report());
    assert_eq!(a.reads_digest, b.reads_digest, "read values must be deterministic");
    assert_eq!(a.schedule_digest, b.schedule_digest);
}

#[test]
fn bursty_traffic_drains_cleanly_through_a_tight_admission_window() {
    let mut spec = TrafficSpec {
        num_queries: 2_000,
        max_concurrency: 16,
        arrivals: ArrivalProcess::Bursty { rate: 2_000.0, burst: 64, gap: 0.05 },
        templates_per_workload: 2,
        n_shards: 3,
        read_every: 8,
        swap_every: 256,
        ..TrafficSpec::default()
    };
    // Two workloads keep template capture cheap; the pressure comes from
    // the bursts, not the mix breadth.
    spec.mix = [0.0, 1.0, 0.0, 0.0, 1.0, 0.0];
    let templates = TemplateSet::build(&spec);
    let out = drive(&spec, &templates);
    assert_eq!(out.metrics.violations, Vec::<String>::new());
    assert_eq!(out.metrics.counters.finished, 2_000);
    assert!(out.metrics.counters.max_in_flight <= 16);
    assert!(
        out.metrics.counters.queue_peak > 0,
        "64-wide bursts against a 16-wide window must queue"
    );
    assert_eq!(out.stats.registered, 0);
}
