//! Cross-crate integration: datagen → planner → engine → estimators →
//! features → MART → selection, end to end.

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::{FeatureMode, TrainingSet};
use prosel::estimators::EstimatorKind;
use prosel::mart::BoostParams;
use prosel::planner::workload::{WorkloadKind, WorkloadSpec};

fn quick_boost() -> BoostParams {
    BoostParams { iterations: 60, colsample: 0.7, ..BoostParams::default() }
}

#[test]
fn selection_generalizes_across_query_split() {
    // Train and test on disjoint query halves of the same workload.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 2024).with_queries(120);
    let records = collect_workload_records(&spec).expect("collect");
    assert!(records.len() > 120, "expected >1 pipeline per query on average");

    let (train_records, test_records): (Vec<_>, Vec<_>) =
        records.into_iter().partition(|r| r.query_idx % 2 == 0);
    let train = TrainingSet::from_records(&train_records);
    let test = TrainingSet::from_records(&test_records);

    let cfg = SelectorConfig::default().with_boost(quick_boost());
    let selector = EstimatorSelector::train(&train, &cfg);
    let report = selector.evaluate(&test);

    // Selection must beat the *worst* fixed estimator clearly and be at
    // least competitive with the best one.
    let fixed: Vec<f64> = EstimatorKind::EXTENDED.iter().map(|&k| test.mean_l1(k)).collect();
    let best = fixed.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = fixed.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        report.chosen_l1 < worst,
        "selection {:.4} must beat the worst fixed estimator {:.4}",
        report.chosen_l1,
        worst
    );
    assert!(
        report.chosen_l1 < best * 1.15,
        "selection {:.4} should be close to or better than the best fixed {:.4}",
        report.chosen_l1,
        best
    );
    // And it must stay above the oracle floor.
    assert!(report.chosen_l1 >= report.oracle_l1 - 1e-9);
    assert!(report.pct_optimal > 0.3, "pct_optimal {:.3}", report.pct_optimal);
}

#[test]
fn selection_transfers_to_unseen_workload_family() {
    // Train on TPC-H + Real-2, test on TPC-DS (never seen).
    let mut train_records = Vec::new();
    for spec in [
        WorkloadSpec::new(WorkloadKind::TpchLike, 7).with_queries(90),
        WorkloadSpec::new(WorkloadKind::Real2, 8).with_queries(60),
    ] {
        train_records.extend(collect_workload_records(&spec).expect("collect"));
    }
    let test_records =
        collect_workload_records(&WorkloadSpec::new(WorkloadKind::TpcdsLike, 9).with_queries(60))
            .expect("collect");

    let train = TrainingSet::from_records(&train_records);
    let test = TrainingSet::from_records(&test_records);
    let cfg = SelectorConfig::default().with_boost(quick_boost());
    let selector = EstimatorSelector::train(&train, &cfg);
    let report = selector.evaluate(&test);

    let worst = EstimatorKind::EXTENDED.iter().map(|&k| test.mean_l1(k)).fold(0.0f64, f64::max);
    assert!(
        report.chosen_l1 < worst,
        "ad-hoc selection {:.4} must beat the worst fixed {:.4}",
        report.chosen_l1,
        worst
    );
    // Catastrophic choices must be rare even on an unseen schema.
    assert!(report.ratio_over_10x < 0.15, "10x blowups: {:.3}", report.ratio_over_10x);
}

#[test]
fn static_and_dynamic_modes_are_both_usable() {
    let spec = WorkloadSpec::new(WorkloadKind::Real1, 31).with_queries(80);
    let records = collect_workload_records(&spec).expect("collect");
    let (train_records, test_records): (Vec<_>, Vec<_>) =
        records.into_iter().partition(|r| r.query_idx % 2 == 0);
    let train = TrainingSet::from_records(&train_records);
    let test = TrainingSet::from_records(&test_records);

    for mode in [FeatureMode::Static, FeatureMode::StaticDynamic] {
        let cfg = SelectorConfig::default().with_mode(mode).with_boost(quick_boost());
        let selector = EstimatorSelector::train(&train, &cfg);
        let report = selector.evaluate(&test);
        assert!(report.chosen_l1.is_finite());
        assert!(report.chosen_l1 < 0.3, "{mode:?}: chosen_l1 {}", report.chosen_l1);
    }
}

#[test]
fn training_is_deterministic() {
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 17).with_queries(40);
    let records = collect_workload_records(&spec).expect("collect");
    let ts = TrainingSet::from_records(&records);
    let cfg = SelectorConfig::default().with_boost(quick_boost());
    let a = EstimatorSelector::train(&ts, &cfg);
    let b = EstimatorSelector::train(&ts, &cfg);
    for r in ts.records.iter().take(25) {
        assert_eq!(a.select(&r.features), b.select(&r.features));
    }
}
