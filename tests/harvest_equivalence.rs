//! The harvest contract: records mined **online** from a tapped run (the
//! monitor's `Finished` hook) must be byte-identical — features and
//! labels, across every estimator kind — to what the batch
//! `pipeline_runs` extraction computes from the completed trace of the
//! same execution.

use prosel::core::pipeline_runs::{records_from_run, PipelineRecord};
use prosel::engine::{
    run_concurrent_tapped, run_plan_tapped, Catalog, ConcurrentConfig, ExecConfig, QueryRun,
};
use prosel::estimators::kinds::EstimatorKind;
use prosel::monitor::{HarvestConfig, HarvestedQuery, MonitorBuilder};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

const MIN_OBS: usize = 5;

/// Field-by-field bit equality of two records.
fn assert_records_identical(online: &PipelineRecord, batch: &PipelineRecord, label: &str) {
    assert_eq!(online.workload, batch.workload, "{label}: workload");
    assert_eq!(online.query_idx, batch.query_idx, "{label}: query_idx");
    assert_eq!(online.pipeline_id, batch.pipeline_id, "{label}: pipeline_id");
    assert_eq!(online.n_obs, batch.n_obs, "{label}: n_obs");
    assert_eq!(online.total_getnext, batch.total_getnext, "{label}: total_getnext");
    assert_eq!(online.fingerprint, batch.fingerprint, "{label}: fingerprint");
    assert_eq!(online.weight.to_bits(), batch.weight.to_bits(), "{label}: weight");
    assert_eq!(online.features.len(), batch.features.len(), "{label}: feature dims");
    for (i, (a, b)) in online.features.iter().zip(&batch.features).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: feature {i}: online {a} vs batch {b}");
    }
    // Labels across every candidate estimator…
    assert_eq!(online.errors_l1.len(), EstimatorKind::CANDIDATES.len());
    for (i, kind) in EstimatorKind::CANDIDATES.into_iter().enumerate() {
        assert_eq!(
            online.errors_l1[i].to_bits(),
            batch.errors_l1[i].to_bits(),
            "{label}: L1({kind})"
        );
        assert_eq!(
            online.errors_l2[i].to_bits(),
            batch.errors_l2[i].to_bits(),
            "{label}: L2({kind})"
        );
    }
    // …and the two oracle models.
    for i in 0..2 {
        assert_eq!(online.oracle_l1[i].to_bits(), batch.oracle_l1[i].to_bits(), "{label}: oracle");
        assert_eq!(online.oracle_l2[i].to_bits(), batch.oracle_l2[i].to_bits(), "{label}: oracle");
    }
}

fn assert_harvest_matches_batch(
    harvests: &[HarvestedQuery],
    runs: &[(usize, &QueryRun)],
    label: &str,
) {
    let mut batch = Vec::new();
    for &(query, run) in runs {
        records_from_run(run, label, query, MIN_OBS, &mut batch);
    }
    let mut online: Vec<&PipelineRecord> = harvests.iter().flat_map(|h| &h.records).collect();
    online.sort_by_key(|r| (r.query_idx, r.pipeline_id));
    batch.sort_by_key(|r| (r.query_idx, r.pipeline_id));
    assert_eq!(online.len(), batch.len(), "{label}: record counts");
    assert!(!batch.is_empty(), "{label}: the workload must yield records");
    for (o, b) in online.iter().zip(&batch) {
        assert_records_identical(o, b, &format!("{label} q{} p{}", b.query_idx, b.pipeline_id));
    }
}

#[test]
fn sequential_harvest_is_byte_identical_to_batch_extraction() {
    for (kind, seed) in [(WorkloadKind::TpchLike, 0xA110u64), (WorkloadKind::TpcdsLike, 0xA111u64)]
    {
        let spec = WorkloadSpec::new(kind, seed).with_queries(10);
        let label = spec.label();
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let (sink, harvest_rx) = std::sync::mpsc::channel();
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne)
            .harvester(
                Arc::new(sink),
                HarvestConfig { label: label.clone(), min_observations: MIN_OBS },
            )
            .build_monitor()
            .expect("build");
        let mut runs = Vec::new();
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).expect("plan");
            let (tap, events) = std::sync::mpsc::channel();
            monitor.register(qi, &plan);
            let cfg = ExecConfig { seed: seed ^ qi as u64, ..ExecConfig::default() };
            let run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
            monitor.drain(&events);
            runs.push(run);
        }
        let harvests: Vec<HarvestedQuery> = harvest_rx.try_iter().collect();
        assert_eq!(harvests.len(), w.queries.len(), "{label}: one harvest per query");
        let runs_ref: Vec<(usize, &QueryRun)> = runs.iter().enumerate().collect();
        assert_harvest_matches_batch(&harvests, &runs_ref, &label);
    }
}

#[test]
fn concurrent_harvest_with_thinning_is_byte_identical_to_batch_extraction() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xA112).with_queries(9);
    let label = spec.label();
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    let (sink, harvest_rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne)
        .harvester(
            Arc::new(sink),
            HarvestConfig { label: label.clone(), min_observations: MIN_OBS },
        )
        .build_monitor()
        .expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        monitor.register(qi, plan);
    }
    let (tap, events) = std::sync::mpsc::channel();
    // A small trace buffer forces thinning events mid-stream, so the
    // harvest also exercises the buffer-mirror path.
    let cfg = ConcurrentConfig {
        exec: ExecConfig { seed: 0xA112, max_snapshots: 24, ..ExecConfig::default() },
        ..Default::default()
    };
    let runs = run_concurrent_tapped(&catalog, &plans, &cfg, tap);
    monitor.drain(&events);
    let harvests: Vec<HarvestedQuery> = harvest_rx.try_iter().collect();
    assert_eq!(harvests.len(), plans.len(), "one harvest per interleaved query");
    let runs_ref: Vec<(usize, &QueryRun)> = runs.iter().enumerate().collect();
    assert_harvest_matches_batch(&harvests, &runs_ref, &label);
}
