//! Workspace smoke test: the `prosel::` facade runs the full paper
//! pipeline end-to-end on a small synthetic workload — datagen → planner →
//! engine → estimators → features → MART → selection — and the trained
//! selector is no worse than the worst single estimator.
//!
//! Deliberately small (fast enough for every CI run); the heavier
//! generalization checks live in `tests/integration_selection.rs`.

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::estimators::EstimatorKind;
use prosel::mart::BoostParams;
use prosel::planner::workload::{WorkloadKind, WorkloadSpec};

#[test]
fn facade_end_to_end_selection_beats_worst_estimator() {
    // 1. Small synthetic workload, executed into labelled records.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x5eed).with_queries(40);
    let records = collect_workload_records(&spec).expect("workload executes");
    assert!(!records.is_empty(), "workload produced no pipeline records");

    // 2. Train a selector (fast boosting parameters).
    let train = TrainingSet::from_records(&records);
    let cfg =
        SelectorConfig::default().with_boost(BoostParams { iterations: 40, ..BoostParams::fast() });
    let selector = EstimatorSelector::train(&train, &cfg);

    // 3. Selected-estimator L1 must not exceed the worst fixed
    //    estimator's (in-sample; the floor any useful selector clears).
    let report = selector.evaluate(&train);
    let worst = EstimatorKind::EXTENDED.iter().map(|&k| train.mean_l1(k)).fold(0.0f64, f64::max);
    assert!(
        report.chosen_l1 <= worst,
        "selected-estimator L1 {:.4} exceeds worst single estimator {:.4}",
        report.chosen_l1,
        worst
    );

    // Sanity on the report itself.
    assert!(report.chosen_l1.is_finite() && report.chosen_l1 >= 0.0);
    assert!(report.chosen_l1 >= report.oracle_l1 - 1e-9);

    // 4. The selector answers for fresh feature vectors.
    let choice = selector.select(&records[0].features);
    assert!(
        EstimatorKind::EXTENDED.contains(&choice) || EstimatorKind::CANDIDATES.contains(&choice)
    );
}
