//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use prosel::datagen::Zipf;
use prosel::engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel::engine::{run_plan, run_plan_tapped, Catalog, ExecConfig, SortedIndex, Tuple};
use prosel::estimators::refine::{bounds, clamp_estimate, interpolated_estimate};
use prosel::estimators::{l1_error, l2_error, EstimatorKind, IncrementalObs, PipelineObs};
use prosel::mart::{BoostParams, Dataset, Mart};
use prosel::monitor::MonitorBuilder;
use prosel::planner::stats::ColumnStats;
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---------------- Zipf ------------------------------------------------
    #[test]
    fn zipf_samples_in_domain(n in 1u64..5000, theta in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let v = z.sample(&mut rng);
            prop_assert!(v >= 1 && v <= n);
            let p = z.sample_permuted(&mut rng);
            prop_assert!(p >= 1 && p <= n);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one(n in 1u64..400, theta in 0.0f64..3.0) {
        let z = Zipf::new(n, theta);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    // ---------------- Tuples ----------------------------------------------
    #[test]
    fn tuple_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..24)) {
        let t = Tuple::from_slice(&vals);
        prop_assert_eq!(t.len(), vals.len());
        prop_assert_eq!(t.as_slice(), vals.as_slice());
        prop_assert_eq!(t.width_bytes(), vals.len() as u64 * 8);
    }

    #[test]
    fn tuple_concat_is_append(
        a in proptest::collection::vec(any::<i64>(), 0..12),
        b in proptest::collection::vec(any::<i64>(), 0..12),
    ) {
        let t = Tuple::from_slice(&a).concat(&Tuple::from_slice(&b));
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        prop_assert_eq!(t.as_slice(), expect.as_slice());
    }

    // ---------------- Sorted index ----------------------------------------
    #[test]
    fn sorted_index_equal_range_matches_scan(col in proptest::collection::vec(-50i64..50, 1..300), probe in -60i64..60) {
        let idx = SortedIndex::build(&col);
        let (lo, hi) = idx.equal_range(probe);
        let expected = col.iter().filter(|&&v| v == probe).count();
        prop_assert_eq!(hi - lo, expected);
        for pos in lo..hi {
            prop_assert_eq!(col[idx.rowid_at(pos) as usize], probe);
        }
    }

    #[test]
    fn sorted_index_range_matches_scan(
        col in proptest::collection::vec(-50i64..50, 1..300),
        a in -60i64..60,
        b in -60i64..60,
    ) {
        let (lo_k, hi_k) = (a.min(b), a.max(b));
        let idx = SortedIndex::build(&col);
        let (lo, hi) = idx.range(lo_k, hi_k);
        let expected = col.iter().filter(|&&v| v >= lo_k && v <= hi_k).count();
        prop_assert_eq!(hi - lo, expected);
    }

    // ---------------- Predicates -------------------------------------------
    #[test]
    fn cmp_op_total(a in any::<i64>(), b in any::<i64>()) {
        // Exactly one of <, ==, > holds, and the ops agree with it.
        let lt = CmpOp::Lt.eval(a, b);
        let eq = CmpOp::Eq.eval(a, b);
        let gt = CmpOp::Gt.eval(a, b);
        prop_assert_eq!([lt, eq, gt].iter().filter(|&&x| x).count(), 1);
        prop_assert_eq!(CmpOp::Le.eval(a, b), lt || eq);
        prop_assert_eq!(CmpOp::Ge.eval(a, b), gt || eq);
        prop_assert_eq!(CmpOp::Ne.eval(a, b), !eq);
    }

    #[test]
    fn predicate_and_or_consistent(v in any::<i64>(), lo in -100i64..0, hi in 0i64..100) {
        let range = Predicate::ColRange { col: 0, lo, hi };
        let above = Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: hi };
        let both = Predicate::And(Box::new(range.clone()), Box::new(above.clone()));
        let either = Predicate::Or(Box::new(range.clone()), Box::new(above.clone()));
        let row = [v];
        prop_assert_eq!(both.eval(&row, 0), range.eval(&row, 0) && above.eval(&row, 0));
        prop_assert_eq!(either.eval(&row, 0), range.eval(&row, 0) || above.eval(&row, 0));
        // Range ∧ strictly-above is unsatisfiable.
        prop_assert!(!both.eval(&row, 0));
    }

    // ---------------- Refinement bounds ------------------------------------
    #[test]
    fn bounds_bracket_and_clamp(k0 in 0u64..100, k1 in 0u64..100, est in 0.0f64..500.0) {
        let plan = PhysicalPlan {
            nodes: vec![
                PlanNode {
                    op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                    children: vec![],
                    est_rows: 100.0,
                    est_row_bytes: 8.0,
                    out_cols: 1,
                },
                PlanNode {
                    op: OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: 0 },
                    },
                    children: vec![0],
                    est_rows: est,
                    est_row_bytes: 8.0,
                    out_cols: 1,
                },
            ],
            root: 1,
        };
        // Filter output can never exceed its input.
        let k1 = k1.min(k0);
        let (lb, ub) = bounds(&plan, &[k0, k1]);
        for i in 0..2 {
            prop_assert!(lb[i] <= ub[i] + 1e-9, "lb {} > ub {}", lb[i], ub[i]);
        }
        let clamped = clamp_estimate(est, lb[1], ub[1]);
        prop_assert!(clamped >= lb[1] - 1e-9 && clamped <= ub[1] + 1e-9);
        // The clamped estimate never contradicts what has been observed.
        prop_assert!(clamped >= k1 as f64 - 1e-9);
    }

    #[test]
    fn interpolation_between_k_and_k_plus_e(k in 0.0f64..1000.0, e in 0.0f64..1000.0, a in 0.0f64..1.0) {
        let v = interpolated_estimate(k, e, a);
        prop_assert!(v >= k - 1e-9);
        prop_assert!(v <= k + e + 1e-9);
    }

    // ---------------- Error metrics ----------------------------------------
    #[test]
    fn l1_l2_metric_properties(curve in proptest::collection::vec(0.0f64..1.0, 1..60)) {
        let truth: Vec<f64> = curve.iter().map(|v| (v * 0.9).min(1.0)).collect();
        let l1 = l1_error(&curve, &truth);
        let l2 = l2_error(&curve, &truth);
        prop_assert!((0.0..=1.0).contains(&l1));
        prop_assert!(l2 >= l1 - 1e-9, "l2 {l2} < l1 {l1}"); // RMS >= mean(|.|)
        prop_assert!((l1_error(&curve, &curve)).abs() < 1e-12);
    }

    // ---------------- Statistics --------------------------------------------
    #[test]
    fn histogram_total_close_to_rows(col in proptest::collection::vec(-1000i64..1000, 10..2000)) {
        let stats = ColumnStats::build(&col);
        let total = stats.histogram.estimate_range(stats.min, stats.max);
        let rows = col.len() as f64;
        prop_assert!(
            (total - rows).abs() / rows < 0.25,
            "range(min,max) {total} vs rows {rows}"
        );
        prop_assert!(stats.ndv >= 1.0 && stats.ndv <= rows + 1.0);
    }

    // ---------------- MART ---------------------------------------------------
    #[test]
    fn mart_predictions_finite_and_bounded(seed in any::<u64>()) {
        let mut d = Dataset::new(2);
        let mut s = seed;
        for i in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (s >> 33) as f32 / (1u64 << 31) as f32;
            d.push(&[x, i as f32], x.clamp(0.0, 1.0));
        }
        let model = Mart::train(&d, &BoostParams::fast());
        for i in 0..200 {
            let p = model.predict(d.row(i));
            prop_assert!(p.is_finite());
            // LS boosting of targets in [0,1] stays within a soft margin.
            prop_assert!((-0.5..=1.5).contains(&p), "prediction {p}");
        }
    }
}

// Online-estimation properties: each case executes a real (small) workload
// query, so the case count is kept low — breadth comes from the randomized
// workload seeds, plans and snapshot budgets.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn clamped_estimates_stay_within_bounds_on_prefixes(
        workload_seed in 0u64..1000,
        query_pick in 0usize..4,
        snap_interval in 20.0f64..120.0,
    ) {
        // Random workload, random observation cadence: at *every* snapshot
        // prefix, every per-node estimate clamped by `refine::bounds` must
        // land inside those bounds and never contradict the observed K.
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, workload_seed)
            .with_queries(4)
            .with_scale(0.3);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[query_pick]).expect("plan");
        let run = run_plan(
            &catalog,
            &plan,
            &ExecConfig {
                seed: workload_seed,
                initial_snapshot_interval: snap_interval,
                ..ExecConfig::default()
            },
        );
        for snap in &run.trace.snapshots {
            let (lb, ub) = bounds(&run.plan, &snap.k);
            for n in 0..run.plan.len() {
                prop_assert!(lb[n] <= ub[n] + 1e-9, "lb {} > ub {}", lb[n], ub[n]);
                let c = clamp_estimate(run.plan.node(n).est_rows, lb[n], ub[n]);
                prop_assert!(c >= lb[n] - 1e-9 && c <= ub[n] + 1e-9, "clamp escaped bounds");
                prop_assert!(c >= snap.k[n] as f64 - 1e-9, "clamp below observed K");
            }
        }
    }

    #[test]
    fn incremental_append_equals_batch_curves(
        workload_seed in 0u64..1000,
        tpcds in any::<bool>(),
        max_snapshots in 24usize..200,
    ) {
        // Online/offline equivalence over random workload specs and
        // snapshot budgets (small budgets force thinning): the
        // append-built curves must equal the batch `PipelineObs` curves
        // exactly — bit for bit — for every estimator kind.
        let kind = if tpcds { WorkloadKind::TpcdsLike } else { WorkloadKind::TpchLike };
        let spec = WorkloadSpec::new(kind, workload_seed).with_queries(2).with_scale(0.3);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).expect("plan");
            let cfg = ExecConfig {
                seed: workload_seed ^ qi as u64,
                max_snapshots,
                ..ExecConfig::default()
            };
            let (tap, rx) = std::sync::mpsc::channel();
            let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
            monitor.register(qi, &plan);
            let run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
            monitor.drain(&rx);
            let mut kinds = prosel::estimators::ONLINE_KINDS.to_vec();
            kinds.push(EstimatorKind::GetNextOracle);
            kinds.push(EstimatorKind::BytesOracle);
            let ctx = prosel::estimators::TraceCtx::new(&run);
            for pid in 0..run.pipelines.len() {
                let inc = monitor.observation(qi, pid).expect("pipeline");
                match PipelineObs::with_ctx(&run, pid, &ctx) {
                    None => prop_assert!(inc.is_empty(), "online-only observations on p{pid}"),
                    Some(batch) => {
                        prop_assert_eq!(inc.times(), &batch.times[..], "obs set p{}", pid);
                        for k in kinds.iter().copied() {
                            let online = inc.curve(k);
                            let offline = batch.curve(k);
                            prop_assert_eq!(online.len(), offline.len());
                            for (a, b) in online.iter().zip(&offline) {
                                prop_assert!(
                                    a.to_bits() == b.to_bits(),
                                    "{} differs on p{}: {:?} vs {:?}", k, pid, a, b
                                );
                            }
                        }
                        // And the replay path agrees with the live path.
                        let rep = IncrementalObs::replay_shared(&run, pid, &ctx).expect("replay");
                        prop_assert_eq!(rep.times(), inc.times());
                        prop_assert_eq!(rep.curve(EstimatorKind::Luo), inc.curve(EstimatorKind::Luo));
                    }
                }
            }
        }
    }

    #[test]
    fn monitor_invariants_hold_live(
        workload_seed in 0u64..1000,
        query_pick in 0usize..3,
        use_oracle_check in any::<bool>(),
    ) {
        // Monitor invariants on a random query: reported progress stays in
        // [0,1], is monotone non-decreasing under the monotone DNE
        // estimator, and pins to exactly 1.0 once the engine reports the
        // final snapshot.
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, workload_seed)
            .with_queries(3)
            .with_scale(0.3);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[query_pick]).expect("plan");
        let (tap, rx) = std::sync::mpsc::channel();
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
        monitor.register(0, &plan);
        let run = run_plan_tapped(
            &catalog,
            &plan,
            &ExecConfig { seed: workload_seed, ..ExecConfig::default() },
            0,
            tap,
        );
        let mut prev = 0.0f64;
        while let Ok(ev) = rx.try_recv() {
            monitor.ingest(ev);
            let p = monitor.query_progress(0).expect("registered");
            prop_assert!((0.0..=1.0).contains(&p), "progress {} out of range", p);
            prop_assert!(p >= prev - 1e-12, "progress regressed {} -> {}", prev, p);
            prev = p;
        }
        prop_assert_eq!(monitor.query_progress(0), Some(1.0));
        // Monotone estimators stay monotone on the committed curves too.
        let check: &[EstimatorKind] = if use_oracle_check {
            &[EstimatorKind::Dne, EstimatorKind::GetNextOracle]
        } else {
            &[EstimatorKind::Dne]
        };
        for pid in 0..run.pipelines.len() {
            let inc = monitor.observation(0, pid).expect("pipeline");
            for &k in check {
                let c = inc.curve(k);
                for pair in c.windows(2) {
                    prop_assert!(pair[0] <= pair[1] + 1e-12, "{} regressed on p{}", k, pid);
                }
            }
        }
    }
}
