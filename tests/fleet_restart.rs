//! Restart-resume at the workspace level: a learning-loop process that
//! crashes between feedback rounds and comes back from its artifacts
//! must be **indistinguishable** from one that never crashed.
//!
//! * The learner side: checkpoint → drop → [`OnlineLearner::restore`] in
//!   a "new process", then drive the restored learner and a never-crashed
//!   twin with the identical harvest stream — every subsequent
//!   checkpoint, retrain decision and served model must stay
//!   byte-identical.
//! * The monitor side: [`MonitorService::harvest_states`] → persist via
//!   the [`HarvestState`] text codec → rebuild through
//!   [`MonitorBuilder::restore`] — the selector epoch stays monotone
//!   across the restart (no replayed publication can roll it back) and
//!   the monotone operation counters carry over instead of resetting.

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_plan_tapped, Catalog, ExecConfig};
use prosel::learn::{BufferConfig, LearnConfig, OnlineLearner};
use prosel::mart::BoostParams;
use prosel::monitor::{HarvestConfig, HarvestState, HarvestedQuery, MonitorBuilder};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

fn selector_on(spec: &WorkloadSpec) -> EstimatorSelector {
    let records = collect_workload_records(spec).expect("workload");
    EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig {
            boost: BoostParams { iterations: 8, ..BoostParams::fast() },
            ..SelectorConfig::default()
        },
    )
}

/// Execute one workload through a harvesting monitor and return the
/// harvests in deterministic (query) order — the feedback stream both
/// universes replay.
fn harvest_round(spec: &WorkloadSpec, selector: Arc<EstimatorSelector>) -> Vec<HarvestedQuery> {
    let w = materialize(spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let (sink, rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::with_selector(selector)
        .harvester(Arc::new(sink), HarvestConfig { label: spec.label(), min_observations: 5 })
        .build_monitor()
        .expect("build");
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let (tap, events) = std::sync::mpsc::channel();
        monitor.register(qi, &plan);
        let cfg = ExecConfig { seed: 0xF1EE ^ qi as u64, ..ExecConfig::default() };
        let _run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
        monitor.drain(&events);
        monitor.unregister(qi).expect("registered above");
    }
    drop(monitor);
    rx.try_iter().collect()
}

fn learn_config() -> LearnConfig {
    LearnConfig {
        buffer: BufferConfig { capacity: 96, group_quota: 16, ..BufferConfig::default() },
        retrain_every: 0,
        holdout_every: 4,
        min_records: 12,
        warm_trees: 16,
        ..LearnConfig::default()
    }
}

/// Crash between feedback rounds: the restored learner and a
/// never-crashed twin fed the same stream stay byte-identical through
/// the next absorb/retrain cycle — including the retrain (the restored
/// reservoir generator resumes at the recorded draw position and the
/// re-seated boost parameters reproduce the exact candidate fit).
#[test]
fn restarted_learner_is_indistinguishable_from_an_uncrashed_one() {
    let baseline = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpchLike, 0xF1E0).with_queries(8).with_scale(0.4),
    ));
    let round1 = harvest_round(
        &WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xF1E1).with_queries(8),
        Arc::clone(&baseline),
    );
    let round2 = harvest_round(
        &WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xF1E2).with_queries(8),
        Arc::clone(&baseline),
    );
    assert!(!round1.is_empty() && !round2.is_empty(), "harvests must flow");

    // Universe A never crashes.
    let mut continuous = OnlineLearner::new(Arc::clone(&baseline), learn_config());
    // Universe B checkpoints after round 1, "crashes", and resumes.
    let mut doomed = OnlineLearner::new(Arc::clone(&baseline), learn_config());
    for h in &round1 {
        continuous.absorb(h);
        doomed.absorb(h);
    }
    continuous.retrain();
    doomed.retrain();
    let artifact = doomed.checkpoint();
    drop(doomed); // the crash

    let mut restored = OnlineLearner::restore(&artifact).expect("own checkpoint must restore");
    assert_eq!(restored.checkpoint(), artifact, "restore -> checkpoint is the identity");
    assert_eq!(
        restored.current().to_text(),
        continuous.current().to_text(),
        "the restored learner serves the exact promoted model"
    );

    // Both universes replay round 2.
    for h in &round2 {
        continuous.absorb(h);
        restored.absorb(h);
    }
    let a = continuous.retrain();
    let b = restored.retrain();
    assert_eq!(a.promoted, b.promoted);
    assert_eq!(a.trained_on, b.trained_on);
    assert_eq!(
        continuous.current().to_text(),
        restored.current().to_text(),
        "post-restart retrains must fit the identical model"
    );
    assert_eq!(
        continuous.checkpoint(),
        restored.checkpoint(),
        "the universes stay bit-identical after the restart"
    );
}

/// Crash a sharded service after swaps and traffic: the successor built
/// from persisted [`HarvestState`] artifacts resumes the epoch (keeping
/// post-restart swaps monotone) and the monotone counters.
#[test]
fn restarted_service_resumes_epoch_and_counters() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xF1E5).with_queries(6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();
    let baseline = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpchLike, 0xF1E6).with_queries(8).with_scale(0.4),
    ));

    let service = MonitorBuilder::with_selector(Arc::clone(&baseline))
        .shards(3)
        .build_service()
        .expect("build");
    // Two swaps advance the epoch; traffic advances the counters.
    service.swap_selector(Arc::clone(&baseline)).expect("swap");
    service.swap_selector(Arc::clone(&baseline)).expect("swap");
    for (qi, plan) in plans.iter().enumerate() {
        service.try_register(qi, plan).expect("register");
        let cfg = ExecConfig { seed: 0xF1E5 ^ qi as u64, ..ExecConfig::default() };
        let _run = run_plan_tapped(&catalog, plan, &cfg, qi, service.tap());
    }
    service.quiesce();
    let states = service.harvest_states();
    assert_eq!(states.len(), 3);
    assert!(states.iter().all(|s| s.epoch == 2), "both swaps reached every shard");
    assert!(states.iter().map(|s| s.stats.events_ingested).sum::<u64>() > 0);

    // Persist through the strict text codec — what a checkpoint file
    // holds — and crash the process.
    let persisted: Vec<String> = states.iter().map(HarvestState::to_text).collect();
    service.shutdown();
    let recovered: Vec<HarvestState> =
        persisted.iter().map(|t| HarvestState::from_text(t).expect("own artifact")).collect();
    assert_eq!(recovered, states, "the codec round-trips the exact states");

    let successor = MonitorBuilder::with_selector(Arc::clone(&baseline))
        .shards(3)
        .restore(recovered)
        .build_service()
        .expect("restore");
    let resumed = successor.harvest_states();
    for (before, after) in states.iter().zip(&resumed) {
        assert_eq!(after.epoch, before.epoch, "epoch must survive the restart");
        assert_eq!(
            after.stats.events_ingested, before.stats.events_ingested,
            "monotone counters must carry over"
        );
        assert_eq!(after.stats.registered, 0, "no phantom registrations after a restart");
    }
    // Post-restart swaps continue the monotone epoch sequence instead of
    // restarting from zero — the stale-publication guard keeps working.
    let epoch = successor.swap_selector(baseline).expect("swap");
    assert_eq!(epoch, 3, "the first post-restart swap must advance past the checkpoint");

    // A shard-count mismatch is a refused restore, not a silent partial.
    let one = vec![HarvestState::default()];
    let err = MonitorBuilder::fixed(prosel::estimators::EstimatorKind::Dne)
        .shards(2)
        .restore(one)
        .build_service()
        .err()
        .unwrap();
    assert!(err.to_string().contains("shard"), "{err}");
    successor.shutdown();
}
