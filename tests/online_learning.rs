//! The online-learning loop end to end, at the workspace level:
//!
//! * a hot swap mid-workload never changes anything for queries that were
//!   already registered (bit-equality against a swap-free monitor), while
//!   new registrations pick up the swapped model and epoch;
//! * a selector retrained from harvested feedback serves held-out
//!   selection L1 no worse than the statically-trained baseline —
//!   deterministically, under fixed seeds.

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{
    run_concurrent_tapped, run_plan_tapped, Catalog, ConcurrentConfig, ExecConfig, TraceEvent,
};
use prosel::learn::{BufferConfig, LearnConfig, OnlineLearner};
use prosel::mart::BoostParams;
use prosel::monitor::{HarvestConfig, MonitorConfig, ProgressMonitor};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

fn selector_on(spec: &WorkloadSpec, boost_iters: usize) -> EstimatorSelector {
    let records = collect_workload_records(spec).expect("workload");
    EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig {
            boost: BoostParams { iterations: boost_iters, ..BoostParams::fast() },
            ..SelectorConfig::default()
        },
    )
}

#[test]
fn hot_swap_mid_workload_is_invisible_to_registered_queries() {
    let s1 = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpchLike, 0x51).with_queries(8).with_scale(0.4),
        10,
    ));
    let s2 = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x52).with_queries(8).with_scale(0.4),
        10,
    ));

    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x53).with_queries(6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    // One interleaved event stream, collected up front so both monitors
    // see byte-identical input.
    let (tap, rx) = std::sync::mpsc::channel();
    let cfg = ConcurrentConfig {
        exec: ExecConfig { seed: 0x53, ..ExecConfig::default() },
        ..Default::default()
    };
    run_concurrent_tapped(&catalog, &plans, &cfg, tap);
    let events: Vec<TraceEvent> = rx.try_iter().collect();
    assert!(events.len() > 20);

    let mut plain =
        ProgressMonitor::with_shared_selector(Arc::clone(&s1), MonitorConfig::default());
    let mut swapped =
        ProgressMonitor::with_shared_selector(Arc::clone(&s1), MonitorConfig::default());
    for (qi, plan) in plans.iter().enumerate() {
        plain.register(qi, plan);
        swapped.register(qi, plan);
    }

    let mid = events.len() / 2;
    for (i, ev) in events.iter().enumerate() {
        if i == mid {
            // Swap mid-stream on one monitor only.
            assert_eq!(swapped.swap_selector(Arc::clone(&s2)), 1);
        }
        plain.ingest(ev.clone());
        swapped.ingest(ev.clone());
        // Served answers must stay bit-identical for every in-flight
        // query, before and after the swap.
        for qi in 0..plans.len() {
            let a = plain.query_progress(qi).expect("registered");
            let b = swapped.query_progress(qi).expect("registered");
            assert_eq!(a.to_bits(), b.to_bits(), "q{qi} diverged after event {i}");
        }
    }
    for qi in 0..plans.len() {
        assert_eq!(
            plain.switch_history(qi),
            swapped.switch_history(qi),
            "q{qi}: switch history must be unaffected by the swap"
        );
        for pid in 0.. {
            match (plain.current_choice(qi, pid), swapped.current_choice(qi, pid)) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "q{qi} p{pid} current choice"),
            }
        }
        assert_eq!(swapped.query_selector_epoch(qi), Some(0), "registered pre-swap");
    }

    // New registrations land on the swapped model and epoch: they must
    // match a reference monitor built on s2 directly.
    let mut reference =
        ProgressMonitor::with_shared_selector(Arc::clone(&s2), MonitorConfig::default());
    let q_new = 100usize;
    swapped.register(q_new, &plans[0]);
    reference.register(q_new, &plans[0]);
    assert_eq!(swapped.query_selector_epoch(q_new), Some(1));
    for pid in 0.. {
        match (swapped.initial_choice(q_new, pid), reference.initial_choice(q_new, pid)) {
            (None, None) => break,
            (a, b) => assert_eq!(a, b, "post-swap registration must score with s2 (p{pid})"),
        }
    }
}

#[test]
fn feedback_retrained_selector_is_no_worse_than_the_static_baseline() {
    // Mirrors the `online-learning` bench experiment (same seeds and
    // sizing as its smoke scale): bootstrap on TPC-H-like, feed back
    // TPC-DS-like rounds, score on a disjoint held-out TPC-DS-like set.
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0x0B00).with_queries(8);
    let heldout = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D05).with_queries(32);
    let baseline = Arc::new(selector_on(&bootstrap, 8));
    let held = TrainingSet::from_records(&collect_workload_records(&heldout).expect("held-out"));
    let baseline_l1 = baseline.evaluate(&held).chosen_l1;

    let mut learner = OnlineLearner::new(
        Arc::clone(&baseline),
        LearnConfig {
            buffer: BufferConfig { capacity: 2048, group_quota: 32, ..BufferConfig::default() },
            retrain_every: 0,
            holdout_every: 3,
            min_records: 16,
            warm_trees: 32,
            ..LearnConfig::default()
        },
    );
    let (sink, harvest_rx) = std::sync::mpsc::channel();
    let mut monitor =
        ProgressMonitor::with_shared_selector(Arc::clone(&baseline), MonitorConfig::default())
            .with_harvester(
                Arc::new(sink),
                HarvestConfig { label: "prod".into(), min_observations: 5 },
            );

    for round in 0..3usize {
        let spec =
            WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D10 + round as u64).with_queries(24);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let query_id = round * 100_000 + qi;
            let plan = builder.build(q).expect("plan");
            let (tap, events) = std::sync::mpsc::channel();
            monitor.register(query_id, &plan);
            let cfg = ExecConfig { seed: 0x0D0 ^ query_id as u64, ..ExecConfig::default() };
            run_plan_tapped(&catalog, &plan, &cfg, query_id, tap);
            monitor.drain(&events);
            monitor.unregister(query_id);
        }
        for h in harvest_rx.try_iter() {
            learner.absorb(&h);
        }
        let outcome = learner.retrain();
        if outcome.promoted {
            monitor.swap_selector(learner.current());
        }
    }

    let stats = learner.stats();
    assert!(stats.harvested_records > 50, "harvested {}", stats.harvested_records);
    assert!(stats.retrains == 3);
    assert!(stats.promotions >= 1, "the loop must actually learn something here");
    assert_eq!(monitor.selector_epoch(), stats.promotions as u64);

    let final_l1 = learner.current().evaluate(&held).chosen_l1;
    assert!(
        final_l1 <= baseline_l1 + 1e-12,
        "feedback-retrained selector must serve held-out L1 <= baseline: {final_l1} vs {baseline_l1}"
    );
}
