//! The online-learning loop end to end, at the workspace level:
//!
//! * a hot swap mid-workload never changes anything for queries that were
//!   already registered (bit-equality against a swap-free monitor), while
//!   new registrations pick up the swapped model and epoch;
//! * a selector retrained from harvested feedback serves held-out
//!   selection L1 no worse than the statically-trained baseline —
//!   deterministically, under fixed seeds;
//! * ETA reads (`remaining_time` / `progress_at_deadline`) served by a
//!   sharded service stay well-formed while selectors hot-swap under
//!   concurrent ingest, and the post-load state is bit-identical to a
//!   swap-free reference monitor fed the same per-query streams.

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{
    run_concurrent_tapped, run_plan_tapped, Catalog, ConcurrentConfig, ExecConfig, TraceEvent,
};
use prosel::learn::{BufferConfig, LearnConfig, OnlineLearner};
use prosel::mart::BoostParams;
use prosel::monitor::{HarvestConfig, MonitorBuilder};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

fn selector_on(spec: &WorkloadSpec, boost_iters: usize) -> EstimatorSelector {
    let records = collect_workload_records(spec).expect("workload");
    EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig {
            boost: BoostParams { iterations: boost_iters, ..BoostParams::fast() },
            ..SelectorConfig::default()
        },
    )
}

#[test]
fn hot_swap_mid_workload_is_invisible_to_registered_queries() {
    let s1 = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpchLike, 0x51).with_queries(8).with_scale(0.4),
        10,
    ));
    let s2 = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x52).with_queries(8).with_scale(0.4),
        10,
    ));

    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x53).with_queries(6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    // One interleaved event stream, collected up front so both monitors
    // see byte-identical input.
    let (tap, rx) = std::sync::mpsc::channel();
    let cfg = ConcurrentConfig {
        exec: ExecConfig { seed: 0x53, ..ExecConfig::default() },
        ..Default::default()
    };
    run_concurrent_tapped(&catalog, &plans, &cfg, tap);
    let events: Vec<TraceEvent> = rx.try_iter().collect();
    assert!(events.len() > 20);

    let mut plain = MonitorBuilder::with_selector(Arc::clone(&s1)).build_monitor().expect("build");
    let mut swapped =
        MonitorBuilder::with_selector(Arc::clone(&s1)).build_monitor().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        plain.register(qi, plan);
        swapped.register(qi, plan);
    }

    let mid = events.len() / 2;
    for (i, ev) in events.iter().enumerate() {
        if i == mid {
            // Swap mid-stream on one monitor only.
            assert_eq!(swapped.swap_selector(Arc::clone(&s2)), 1);
        }
        plain.ingest(ev.clone());
        swapped.ingest(ev.clone());
        // Served answers must stay bit-identical for every in-flight
        // query, before and after the swap.
        for qi in 0..plans.len() {
            let a = plain.query_progress(qi).expect("registered");
            let b = swapped.query_progress(qi).expect("registered");
            assert_eq!(a.to_bits(), b.to_bits(), "q{qi} diverged after event {i}");
        }
    }
    for qi in 0..plans.len() {
        assert_eq!(
            plain.switch_history(qi),
            swapped.switch_history(qi),
            "q{qi}: switch history must be unaffected by the swap"
        );
        for pid in 0.. {
            match (plain.current_choice(qi, pid), swapped.current_choice(qi, pid)) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "q{qi} p{pid} current choice"),
            }
        }
        assert_eq!(swapped.query_selector_epoch(qi), Some(0), "registered pre-swap");
    }

    // New registrations land on the swapped model and epoch: they must
    // match a reference monitor built on s2 directly.
    let mut reference =
        MonitorBuilder::with_selector(Arc::clone(&s2)).build_monitor().expect("build");
    let q_new = 100usize;
    swapped.register(q_new, &plans[0]);
    reference.register(q_new, &plans[0]);
    assert_eq!(swapped.query_selector_epoch(q_new), Some(1));
    for pid in 0.. {
        match (swapped.initial_choice(q_new, pid), reference.initial_choice(q_new, pid)) {
            (None, None) => break,
            (a, b) => assert_eq!(a, b, "post-swap registration must score with s2 (p{pid})"),
        }
    }
}

#[test]
fn feedback_retrained_selector_is_no_worse_than_the_static_baseline() {
    // Mirrors the `online-learning` bench experiment (same seeds and
    // sizing as its smoke scale): bootstrap on TPC-H-like, feed back
    // TPC-DS-like rounds, score on a disjoint held-out TPC-DS-like set.
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0x0B00).with_queries(8);
    let heldout = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D05).with_queries(32);
    let baseline = Arc::new(selector_on(&bootstrap, 8));
    let held = TrainingSet::from_records(&collect_workload_records(&heldout).expect("held-out"));
    let baseline_l1 = baseline.evaluate(&held).chosen_l1;

    let mut learner = OnlineLearner::new(
        Arc::clone(&baseline),
        LearnConfig {
            buffer: BufferConfig { capacity: 2048, group_quota: 32, ..BufferConfig::default() },
            retrain_every: 0,
            holdout_every: 3,
            min_records: 16,
            warm_trees: 32,
            ..LearnConfig::default()
        },
    );
    let (sink, harvest_rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::with_selector(Arc::clone(&baseline))
        .harvester(Arc::new(sink), HarvestConfig { label: "prod".into(), min_observations: 5 })
        .build_monitor()
        .expect("build");

    for round in 0..3usize {
        let spec =
            WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D10 + round as u64).with_queries(24);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let query_id = round * 100_000 + qi;
            let plan = builder.build(q).expect("plan");
            let (tap, events) = std::sync::mpsc::channel();
            monitor.register(query_id, &plan);
            let cfg = ExecConfig { seed: 0x0D0 ^ query_id as u64, ..ExecConfig::default() };
            run_plan_tapped(&catalog, &plan, &cfg, query_id, tap);
            monitor.drain(&events);
            monitor.unregister(query_id).expect("registered above");
        }
        for h in harvest_rx.try_iter() {
            learner.absorb(&h);
        }
        let outcome = learner.retrain();
        if outcome.promoted {
            monitor.swap_selector(learner.current());
        }
    }

    let stats = learner.stats();
    assert!(stats.harvested_records > 50, "harvested {}", stats.harvested_records);
    assert!(stats.retrains == 3);
    assert!(stats.promotions >= 1, "the loop must actually learn something here");
    assert_eq!(monitor.selector_epoch(), stats.promotions as u64);

    let final_l1 = learner.current().evaluate(&held).chosen_l1;
    assert!(
        final_l1 <= baseline_l1 + 1e-12,
        "feedback-retrained selector must serve held-out L1 <= baseline: {final_l1} vs {baseline_l1}"
    );
}

#[test]
fn eta_reads_stay_served_and_sane_during_hot_swaps_under_load() {
    use prosel::engine::plan::{OperatorKind, PhysicalPlan, PlanNode};
    use prosel::engine::trace::Snapshot;

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
        TraceEvent::Snapshot {
            query,
            seq,
            wall: time, // wall stamped on the virtual timeline
            snapshot: Snapshot {
                time,
                k: vec![k].into_boxed_slice(),
                bytes_read: vec![k * 8].into_boxed_slice(),
                bytes_written: vec![0].into_boxed_slice(),
                materialized: vec![0].into_boxed_slice(),
            },
            windows: vec![(1.0, time)].into_boxed_slice(),
        }
    }

    let s1_arc = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpchLike, 0x61).with_queries(8).with_scale(0.4),
        8,
    ));
    let s2 = Arc::new(selector_on(
        &WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x62).with_queries(8).with_scale(0.4),
        8,
    ));

    let plan = scan_plan();
    let n_queries = 32usize;
    let n_snaps = 60u64;
    let service = MonitorBuilder::with_selector(Arc::clone(&s1_arc))
        .shards(4)
        .build_service()
        .expect("build");
    for q in 0..n_queries {
        service.register(q, &plan);
    }

    // Writer streams every query's snapshots through the routed tap while
    // readers hammer the ETA surface and the main thread hot-swaps the
    // selector. Every read of a registered query must come back Ok and
    // well-formed — a swap must never make a serve fail or go insane.
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let tap = service.tap();
            for seq in 0..n_snaps {
                for q in 0..n_queries {
                    tap.send(snapshot_event(q, seq, (seq + 1) as f64, seq + 1)).unwrap();
                }
            }
        });
        for reader in 0..3usize {
            let service = &service;
            scope.spawn(move || {
                for i in 0..300usize {
                    let q = (i * 7 + reader) % n_queries;
                    let eta = service.remaining_time(q).expect("registered query must serve");
                    assert!(!eta.remaining.is_nan() && eta.remaining >= 0.0);
                    assert!(
                        eta.remaining_lo <= eta.remaining && eta.remaining <= eta.remaining_hi,
                        "interval must bracket the point estimate"
                    );
                    let p = service
                        .progress_at_deadline(q, 30.0 + i as f64)
                        .expect("registered query must serve");
                    assert!((0.0..=1.0).contains(&p), "q{q} deadline progress {p}");
                }
            });
        }
        let mut last_epoch = 0u64;
        for swap in 0..6usize {
            let payload = if swap % 2 == 0 { Arc::clone(&s2) } else { Arc::clone(&s1_arc) };
            let epoch = service.swap_selector(payload).expect("all shards up");
            assert!(epoch > last_epoch, "swap epochs must be strictly monotone");
            last_epoch = epoch;
        }
        writer.join().unwrap();
    });

    // Reads are wait-free snapshots: drain everything the writer enqueued
    // before comparing final state.
    service.quiesce();

    // Every query registered before the swaps: post-load answers must be
    // bit-identical to a swap-free reference monitor fed the same
    // per-query stream. Compare the at-last-event ETA — the pure function
    // of the ingested stream; the default `remaining_time` additionally
    // folds wall-clock staleness and so differs between two services read
    // at different instants by design.
    let mut reference =
        MonitorBuilder::with_selector(Arc::clone(&s1_arc)).build_monitor().expect("build");
    for q in 0..n_queries {
        reference.register(q, &plan);
        for seq in 0..n_snaps {
            reference.ingest(snapshot_event(q, seq, (seq + 1) as f64, seq + 1));
        }
    }
    for q in 0..n_queries {
        let served = service.remaining_time_at_last_event(q).expect("registered");
        let expect = reference.remaining_time_at_last_event(q).expect("registered");
        assert_eq!(
            served.remaining.to_bits(),
            expect.remaining.to_bits(),
            "q{q}: swaps under load must be bit-invisible to in-flight ETAs"
        );
        assert_eq!(served.as_of.to_bits(), expect.as_of.to_bits(), "q{q} as_of");
        assert_eq!(served.speed.to_bits(), expect.speed.to_bits(), "q{q} speed");
        let sp = service.query_progress(q).expect("registered");
        let rp = reference.query_progress(q).expect("registered");
        assert_eq!(sp.to_bits(), rp.to_bits(), "q{q} progress");
    }
    service.shutdown();
}
