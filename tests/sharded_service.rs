//! Sharded service integration: a [`MonitorService`] fed by real tapped
//! executions must serve exactly what a single-threaded
//! [`ProgressMonitor`] ingesting the same (deterministic) event stream
//! serves — sharding changes the threading, never the estimates.

use prosel::core::pipeline_runs::{collect_from_workload, CollectConfig};
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_concurrent_tapped, Catalog, ConcurrentConfig, ExecConfig};
use prosel::estimators::kinds::EstimatorKind;
use prosel::mart::BoostParams;
use prosel::monitor::{MonitorBuilder, MonitorConfig, QueryError, RegisterError};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

#[test]
fn service_matches_single_monitor_on_concurrent_workload() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xBEEF).with_queries(8).with_scale(0.5);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();
    let cfg = ConcurrentConfig::default();

    // Run 1: tapped into the sharded service (3 shards on 8 queries so
    // shards hold 3/3/2 queries each).
    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(3).build_service().expect("build");
    let queries: Vec<usize> = (0..plans.len()).collect();
    for (qi, plan) in plans.iter().enumerate() {
        service.register(qi, plan);
    }
    let runs = run_concurrent_tapped(&catalog, &plans, &cfg, service.tap());
    // Service reads are wait-free snapshots — drain the tapped events
    // before comparing final state.
    service.quiesce();

    // Run 2: the same workload tapped into a channel-fed single monitor.
    // Concurrent execution is deterministic, so both monitors saw the
    // byte-identical event stream.
    let (tap, rx) = std::sync::mpsc::channel();
    let mut reference = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        reference.register(qi, plan);
    }
    let runs2 = run_concurrent_tapped(&catalog, &plans, &cfg, tap);
    reference.drain(&rx);

    for (qi, (run, run2)) in runs.iter().zip(&runs2).enumerate() {
        assert_eq!(run.trace.snapshots.len(), run2.trace.snapshots.len(), "q{qi} determinism");
        let served = service.status(qi).expect("registered");
        let expect = reference.status(qi).expect("registered");
        assert!(served.finished && expect.finished, "q{qi} must be finished");
        assert_eq!(served.progress.to_bits(), expect.progress.to_bits(), "q{qi} progress");
        assert_eq!(served.time.to_bits(), expect.time.to_bits(), "q{qi} time");
        assert_eq!(served.pipelines.len(), expect.pipelines.len());
        for (a, b) in served.pipelines.iter().zip(&expect.pipelines) {
            assert_eq!(a.pipeline, b.pipeline);
            assert_eq!(a.estimator, b.estimator);
            assert_eq!(a.progress.to_bits(), b.progress.to_bits(), "q{qi} p{}", a.pipeline);
            assert_eq!(a.observations, b.observations, "q{qi} p{}", a.pipeline);
        }
        for pid in 0..run.pipelines.len() {
            assert_eq!(
                service.pipeline_progress(qi, pid).ok().map(f64::to_bits),
                reference.pipeline_progress(qi, pid).map(f64::to_bits),
                "q{qi} p{pid} pipeline progress"
            );
        }
    }
    assert_eq!(service.registered_queries(), queries);
    service.shutdown();
}

#[test]
fn selector_service_matches_single_monitor_including_switches() {
    // Train a small selector, then compare the sharded service against the
    // single-threaded monitor under dynamic re-selection: choices and
    // switch logs must be identical too.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 21).with_queries(20).with_scale(0.5);
    let w = materialize(&spec);
    let records = collect_from_workload(&w, &CollectConfig::default()).expect("records");
    let train = TrainingSet::from_records(&records);
    let cfg = SelectorConfig::default().with_boost(BoostParams::fast());

    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().take(5).map(|q| builder.build(q).expect("plan")).collect();
    let run_cfg = ConcurrentConfig {
        exec: ExecConfig { seed: 0xD1CE, ..ExecConfig::default() },
        ..Default::default()
    };
    let monitor_cfg = MonitorConfig { reselect_every: 3, ..MonitorConfig::default() };

    let service = MonitorBuilder::with_selector(EstimatorSelector::train(&train, &cfg))
        .config(monitor_cfg.clone())
        .shards(4)
        .build_service()
        .expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        service.register(qi, plan);
    }
    run_concurrent_tapped(&catalog, &plans, &run_cfg, service.tap());
    service.quiesce();

    let (tap, rx) = std::sync::mpsc::channel();
    let mut reference = MonitorBuilder::with_selector(EstimatorSelector::train(&train, &cfg))
        .config(monitor_cfg)
        .build_monitor()
        .expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        reference.register(qi, plan);
    }
    run_concurrent_tapped(&catalog, &plans, &run_cfg, tap);
    reference.drain(&rx);

    for qi in 0..plans.len() {
        let switches = service.switch_history(qi).expect("registered");
        let expect = reference.switch_history(qi).expect("registered");
        assert_eq!(switches.len(), expect.len(), "q{qi} switch count");
        for (a, b) in switches.iter().zip(expect) {
            assert_eq!(a, b, "q{qi} switch event");
        }
        let served = service.status(qi).expect("registered");
        let expected = reference.status(qi).expect("registered");
        for (a, b) in served.pipelines.iter().zip(&expected.pipelines) {
            assert_eq!(a.estimator, b.estimator, "q{qi} p{} final choice", a.pipeline);
        }
        assert_eq!(served.progress.to_bits(), expected.progress.to_bits(), "q{qi}");
    }
}

#[test]
fn service_registration_errors_and_late_join_are_graceful() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 7).with_queries(2).with_scale(0.3);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[0]).expect("plan");

    let service =
        MonitorBuilder::fixed(EstimatorKind::Tgn).shards(2).build_service().expect("build");
    assert_eq!(service.try_register(0, &plan), Ok(()));
    assert_eq!(service.try_register(0, &plan), Err(RegisterError::DuplicateQuery(0)));

    // An unregistered query streaming through the tap is ignored; a query
    // registered only after its stream started is dropped on first
    // contact, not served corrupted.
    let late = 1usize;
    let runs = prosel::engine::run_plan_tapped(
        &catalog,
        &plan,
        &ExecConfig::default(),
        late,
        service.tap(),
    );
    assert!(runs.trace.snapshots.len() > 1);
    service.quiesce();
    assert_eq!(service.query_progress(late), Err(QueryError::QueryUnknown(late)));
    service.register(late, &plan);
    let _ = prosel::engine::run_plan_tapped(
        &catalog,
        &plan,
        &ExecConfig::default(),
        late,
        service.tap(),
    );
    // The second stream also starts at seq 0 relative to the engine run,
    // which the shard accepts as a fresh stream for the new registration.
    service.quiesce();
    assert_eq!(service.query_progress(late), Ok(1.0));
    service.shutdown();
}
