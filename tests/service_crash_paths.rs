//! Crash paths of the sharded [`MonitorService`]: a shard task that
//! panics mid-ingest must degrade the service, never wedge it. Reads and
//! swaps against a service with one dead shard come back as typed errors
//! (`ShardDown` / `SwapError`) — never a hang, never a panic in the
//! caller — `stats()` keeps serving with the conservation law intact, the
//! tap returns undeliverable events to the sender, and shutdown during
//! live ingest drains every accepted event before stopping.

use prosel::engine::trace::Snapshot;
use prosel::engine::{run_plan_tapped, Catalog, ExecConfig, TraceEvent};
use prosel::estimators::EstimatorKind;
use prosel::monitor::{MonitorBuilder, QueryError, RegisterError};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 1-node scan plan whose shape matches the synthetic snapshots below.
fn scan_plan() -> prosel::engine::plan::PhysicalPlan {
    prosel::engine::plan::PhysicalPlan {
        nodes: vec![prosel::engine::plan::PlanNode {
            op: prosel::engine::plan::OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
            children: vec![],
            est_rows: 100.0,
            est_row_bytes: 8.0,
            out_cols: 1,
        }],
        root: 0,
    }
}

fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
    TraceEvent::Snapshot {
        query,
        seq,
        wall: time,
        snapshot: Snapshot {
            time,
            k: vec![k].into_boxed_slice(),
            bytes_read: vec![k * 8].into_boxed_slice(),
            bytes_written: vec![0].into_boxed_slice(),
            materialized: vec![0].into_boxed_slice(),
        },
        windows: vec![(1.0, time)].into_boxed_slice(),
    }
}

/// Run `f` on a watchdog thread: the crash-path contract is "typed error,
/// promptly", so a hang is a failure, not a timeout to wait out.
fn within<T: Send>(secs: u64, f: impl FnOnce() -> T + Send) -> T {
    let deadline = Duration::from_secs(secs);
    std::thread::scope(|scope| {
        let handle = scope.spawn(f);
        let start = Instant::now();
        while !handle.is_finished() {
            assert!(start.elapsed() < deadline, "crash-path operation hung past {secs}s");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.join().expect("crash-path operation panicked in the caller")
    })
}

#[test]
fn dead_shard_serves_typed_errors_and_conserves_events() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 9).with_queries(2).with_scale(0.3);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[0]).expect("plan");

    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(3).build_service().expect("build");
    for q in 0..6usize {
        service.register(q, &plan);
    }
    // Query 9 lives on shard 0 (alive) under a 1-node scan plan that the
    // synthetic snapshots below match shape-for-shape.
    service.register(9, scan_plan());
    // Real tapped executions feed queries 0 and 1 so the survivors hold
    // genuine state when the crash hits.
    for q in [0usize, 1] {
        let _ = run_plan_tapped(&catalog, &plan, &ExecConfig::default(), q, service.tap());
    }
    service.quiesce();
    let before = service.stats().expect("stats");
    assert!(before.events_ingested > 0);

    // Kill shard 2 (owns queries 2 and 5) through the real panic path.
    service.inject_shard_panic(2);

    within(10, || {
        // Reads on the dead shard's queries: ShardDown, promptly.
        assert_eq!(service.query_progress(2), Err(QueryError::ShardDown));
        assert_eq!(service.remaining_time(5).unwrap_err(), QueryError::ShardDown);
        assert_eq!(service.remaining_time_with_age(2).unwrap_err(), QueryError::ShardDown);
        assert_eq!(service.progress_at_deadline(5, 1.0), Err(QueryError::ShardDown));
        assert_eq!(service.is_finished(2), Err(QueryError::ShardDown));
        assert!(service.status(5).is_err() && service.switch_history(2).is_err());
        // Survivors keep serving their real state, finished and all.
        assert_eq!(service.is_finished(0), Ok(true));
        assert_eq!(service.query_progress(1), Ok(1.0));
        // Registration on the dead shard is a value, not a panic.
        assert_eq!(service.try_register(8, &plan), Err(RegisterError::ShardDown));
        let mut batch = service.try_register_batch(&[8, 7], &plan);
        batch.sort_by_key(|&(q, _)| q);
        assert_eq!(batch[0], (7, Ok(())));
        assert_eq!(batch[1], (8, Err(RegisterError::ShardDown)));
        // Unregister on the dead shard reports the dead shard.
        assert_eq!(service.unregister(5), Err(QueryError::ShardDown));
    });

    // The router returns the dead shard's events to the sender — singly
    // and batched — and counts every one as rejected.
    let tap = service.tap();
    let ev = snapshot_event(2, 0, 1.0, 10);
    assert_eq!(tap.send(ev.clone()), Err(ev));
    // A mixed batch: the dead shard's events (q2) come back, the live
    // shard's (q9, registered above with a matching plan) are delivered.
    let batch = vec![
        snapshot_event(2, 1, 2.0, 20),
        snapshot_event(9, 0, 1.0, 10),
        snapshot_event(2, 2, 3.0, 30),
        snapshot_event(9, 1, 2.0, 20),
    ];
    let returned = tap.send_batch(batch).expect_err("dead-shard events come back");
    assert_eq!(returned.len(), 2, "only the dead shard's events are returned");
    assert!(returned.iter().all(|ev| ev.query() == 2));

    // stats() never hangs and the three-bucket conservation law holds:
    // everything accepted before the crash is still ingested, everything
    // refused after it is rejected.
    within(10, || {
        service.quiesce();
        let after = service.stats().expect("stats are always served");
        assert_eq!(after.events_ingested, before.events_ingested + 2, "q9 events ingest");
        assert_eq!(after.events_rejected, 3, "1 single + 2 batched events refused");
        assert_eq!(after.events_unroutable, before.events_unroutable);
        assert_eq!(service.is_finished(9), Ok(false), "live shard keeps serving q9");
    });
    within(10, || service.shutdown());
}

#[test]
fn partial_swap_reports_dead_shards_and_applies_to_survivors() {
    use prosel_bench::traffic::synthetic_selector;
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 10).with_queries(2).with_scale(0.3);
    let w = materialize(&spec);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[0]).expect("plan");

    let service = MonitorBuilder::with_selector(synthetic_selector(EstimatorKind::Dne))
        .shards(4)
        .build_service()
        .expect("build");
    service.inject_shard_panic(1);
    service.inject_shard_panic(3);

    let err = within(10, || {
        service.swap_selector(Arc::new(synthetic_selector(EstimatorKind::Tgn))).unwrap_err()
    });
    assert_eq!(err.shards, vec![1, 3], "dead shards reported by id, ascending");
    assert_eq!(err.epoch, Some(1), "survivors really swapped");
    // A registration on a surviving shard scores under the new epoch.
    service.register(0, &plan);
    assert_eq!(service.query_selector_epoch(0), Ok(1));
    // The error is displayable for operators (the soak folds it into its
    // violation log via Display).
    let msg = err.to_string();
    assert!(msg.contains("2 dead shard(s)"), "{msg}");
    within(10, || service.shutdown());
}

#[test]
fn shutdown_during_live_ingest_drains_accepted_events() {
    let plan = scan_plan();
    let n_queries = 16usize;
    let n_events = 200u64;
    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(4).build_service().expect("build");
    for q in 0..n_queries {
        service.register(q, &plan);
    }
    let tap = service.tap();
    let sent = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut accepted = 0u64;
            for seq in 0..n_events {
                for q in 0..n_queries {
                    // Shutdown races this send: once the service starts
                    // stopping, events come back — every *accepted* event
                    // must still be drained, every returned one must not
                    // be counted anywhere.
                    if tap.send(snapshot_event(q, seq, (seq + 1) as f64, seq + 1)).is_ok() {
                        accepted += 1;
                    }
                }
            }
            accepted
        });
        // Let the writer get going, then shut down mid-stream.
        std::thread::sleep(Duration::from_millis(2));
        within(10, || {
            // The quiesce inside shutdown is what's under test: every
            // accepted event must drain before the workers stop.
            service.shutdown();
            // Writer keeps sending into a stopping service; those sends
            // return Err and are uncounted.
            writer.join().expect("writer")
        })
    });
    assert!(sent > 0, "the writer must have landed some events before shutdown");
    // The service is gone; what we pinned is behavioral: no hang, and the
    // tap cleanly refused post-stop traffic (send returned Err rather
    // than panicking), which the writer count reflects.
    assert!(sent <= n_events * n_queries as u64);
}

#[test]
fn accepted_events_are_all_ingested_when_shutdown_races_ingest() {
    // Conservation variant of the drain test: count what the tap accepted
    // and check the shard counters account for every accepted event. Here
    // the service outlives the writer so stats stay readable.
    let plan = scan_plan();
    let n_queries = 8usize;
    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(2).build_service().expect("build");
    for q in 0..n_queries {
        service.register(q, &plan);
    }
    let tap = service.tap();
    let mut accepted = 0u64;
    for seq in 0..400u64 {
        for q in 0..n_queries {
            if tap.send(snapshot_event(q, seq, (seq + 1) as f64, seq + 1)).is_ok() {
                accepted += 1;
            }
        }
    }
    within(10, || service.quiesce());
    let stats = service.stats().expect("stats are always served");
    assert_eq!(
        stats.events_ingested + stats.events_unroutable + stats.events_rejected,
        accepted,
        "every accepted event is accounted exactly once"
    );
    assert_eq!(stats.events_rejected, 0, "no shard died in this run");
    within(10, || service.shutdown());
}
