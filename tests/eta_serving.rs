//! End-to-end ETA serving: real tapped executions, wall-stamped by an
//! injected [`ManualClock`], served as remaining-time answers by both the
//! single-threaded [`ProgressMonitor`] and the sharded [`MonitorService`].
//!
//! The acceptance bar (ISSUE 4): `remaining_time` / `progress_at_deadline`
//! are served by both deployment shapes, and the answers are
//! **bit-deterministic** under a manual clock — byte-identical between the
//! shard and the service, and byte-identical across independent runs.

use prosel::engine::{
    run_concurrent_tapped, Catalog, ConcurrentConfig, ExecConfig, ManualClock, TraceEvent,
};
use prosel::estimators::EstimatorKind;
use prosel::monitor::{Eta, MonitorBuilder, QueryError};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

/// An [`Eta`]'s wall quantities as raw bits, for byte-identity assertions.
fn eta_bits(e: &Eta) -> [u64; 6] {
    [
        e.as_of.to_bits(),
        e.progress.to_bits(),
        e.speed.to_bits(),
        e.remaining.to_bits(),
        e.remaining_lo.to_bits(),
        e.remaining_hi.to_bits(),
    ]
}

/// Run a small concurrent workload tapped into a channel, wall-stamped by
/// a fresh stepping manual clock, and return the recorded event stream.
fn recorded_events(seed: u64, n_queries: usize) -> Vec<TraceEvent> {
    let spec =
        WorkloadSpec::new(WorkloadKind::TpchLike, seed).with_queries(n_queries * 2).with_scale(0.4);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();
    let cfg = ConcurrentConfig {
        exec: ExecConfig {
            // 50 ms of wall time per emitted event: deterministic stamps,
            // strictly increasing, shared across the whole batch.
            wall_clock: Arc::new(ManualClock::stepping(0.0, 0.05)),
            ..ExecConfig::default()
        },
        ..ConcurrentConfig::default()
    };
    let (tap, rx) = std::sync::mpsc::channel();
    run_concurrent_tapped(&catalog, &plans, &cfg, tap);
    rx.try_iter().collect()
}

#[test]
fn shard_and_service_serve_identical_deterministic_etas() {
    let n_queries = 4usize;
    let events = recorded_events(0xE7A, n_queries);
    assert!(events.len() > n_queries, "expected a non-trivial event stream");

    // Wall stamps come from one shared stepping clock: strictly
    // increasing across the interleaved stream.
    let mut prev = f64::NEG_INFINITY;
    for ev in &events {
        if let Some(wall) = ev.wall() {
            assert!(wall > prev, "wall stamps must increase along the stream");
            prev = wall;
        }
    }

    // The plans are needed for registration; rebuild them exactly as the
    // recording run did.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xE7A)
        .with_queries(n_queries * 2)
        .with_scale(0.4);
    let w = materialize(&spec);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();

    // One deterministic probe deadline per query, past the stream's end.
    let horizon = prev + 10.0;

    let run_shard = || {
        let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
        for (qi, plan) in plans.iter().enumerate() {
            monitor.register(qi, plan);
        }
        let mut etas: Vec<[u64; 6]> = Vec::new();
        let mut predictions: Vec<u64> = Vec::new();
        for ev in &events {
            let q = ev.query();
            monitor.ingest(ev.clone());
            // The at-last-event ETA is the pure function of the stream
            // (the default `remaining_time` additionally folds wall-clock
            // staleness in, which is deliberately not bit-stable across
            // independent wall clocks).
            let eta = monitor.remaining_time_at_last_event(q).expect("registered");
            etas.push(eta_bits(&eta));
            let p = monitor.progress_at_deadline(q, horizon).expect("registered");
            predictions.push(p.to_bits());
        }
        (etas, predictions)
    };

    let (etas_a, pred_a) = run_shard();
    let (etas_b, pred_b) = run_shard();
    assert_eq!(etas_a, etas_b, "ETA streams must be byte-identical across runs");
    assert_eq!(pred_a, pred_b, "deadline predictions must be byte-identical across runs");

    // The sharded service, fed the same stream, must serve byte-identical
    // answers. `MonitorService::ingest` blocks until the owning shard has
    // drained the event (read-your-writes), so each wait-free read below
    // observes exactly the prefix the single-threaded shard observed.
    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(3).build_service().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        service.register(qi, plan);
    }
    let mut etas_s: Vec<[u64; 6]> = Vec::new();
    let mut pred_s: Vec<u64> = Vec::new();
    for ev in &events {
        let q = ev.query();
        service.ingest(ev.clone());
        let eta = service.remaining_time_at_last_event(q).expect("registered");
        etas_s.push(eta_bits(&eta));
        let p = service.progress_at_deadline(q, horizon).expect("registered");
        pred_s.push(p.to_bits());
    }
    assert_eq!(etas_a, etas_s, "service ETAs must match the single-threaded shard bit-for-bit");
    assert_eq!(pred_a, pred_s, "service predictions must match the shard bit-for-bit");

    // Terminal answers: every query pinned to remaining 0 / progress 1.
    for qi in 0..n_queries {
        let eta = service.remaining_time(qi).expect("registered");
        assert!(eta.is_known());
        assert_eq!((eta.remaining, eta.progress), (0.0, 1.0), "q{qi} terminal ETA");
        assert_eq!(service.progress_at_deadline(qi, 0.0), Ok(1.0), "q{qi} past deadline");
    }
    assert_eq!(service.remaining_time(99), Err(QueryError::QueryUnknown(99)));
    service.shutdown();
}

#[test]
fn eta_converges_on_a_live_run() {
    // Sanity on the answers themselves (not just determinism): along a
    // run, ETAs become known, stay non-negative, the interval brackets the
    // point, and as_of tracks the stream's wall stamps.
    let n_queries = 2usize;
    let events = recorded_events(0xBEA7, n_queries);
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xBEA7)
        .with_queries(n_queries * 2)
        .with_scale(0.4);
    let w = materialize(&spec);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();
    let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        monitor.register(qi, plan);
    }
    let mut known = 0usize;
    for ev in &events {
        let q = ev.query();
        monitor.ingest(ev.clone());
        let eta = monitor.remaining_time(q).expect("registered");
        assert!(eta.remaining >= 0.0 && !eta.remaining.is_nan());
        assert!(eta.remaining_lo <= eta.remaining && eta.remaining <= eta.remaining_hi);
        if eta.is_known() {
            known += 1;
            if let Some(wall) = ev.wall() {
                assert!(eta.as_of <= wall + 1e-12, "as_of cannot outrun the stream");
            }
        }
    }
    assert!(known > n_queries, "ETAs must become known during the run (got {known})");
    for qi in 0..n_queries {
        assert_eq!(monitor.remaining_time(qi).map(|e| e.remaining), Some(0.0));
    }
}
