//! Concurrency × estimation integration: traces from the multi-query
//! scheduler must flow through the estimator / feature / selection stack
//! unchanged.

use prosel::core::pipeline_runs::records_from_run;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_concurrent, Catalog, ConcurrentConfig, ExecConfig};
use prosel::estimators::{EstimatorKind, PipelineObs};
use prosel::mart::BoostParams;
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

#[test]
fn concurrent_traces_feed_the_full_stack() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 808).with_queries(18);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    let mut records = Vec::new();
    for (gi, group) in plans.chunks(3).enumerate() {
        let runs = run_concurrent(
            &catalog,
            group,
            &ConcurrentConfig {
                exec: ExecConfig { seed: gi as u64, ..ExecConfig::default() },
                ..Default::default()
            },
        );
        for (qi, run) in runs.iter().enumerate() {
            // Estimator curves stay probabilities on concurrent traces.
            for pid in 0..run.pipelines.len() {
                if let Some(obs) = PipelineObs::new(run, pid) {
                    for kind in EstimatorKind::CANDIDATES {
                        for v in obs.curve(kind) {
                            assert!((0.0..=1.0).contains(&v), "{kind}: {v}");
                        }
                    }
                }
            }
            records_from_run(run, "concurrent", gi * 3 + qi, 5, &mut records);
        }
    }
    assert!(records.len() >= 18, "got {} records", records.len());

    // A selector trains and evaluates on concurrent data end to end.
    let ts = TrainingSet::from_records(&records);
    let cfg = SelectorConfig::default()
        .with_boost(BoostParams { iterations: 40, ..BoostParams::default() });
    let selector = EstimatorSelector::train(&ts, &cfg);
    let report = selector.evaluate(&ts);
    assert!(report.chosen_l1.is_finite() && report.chosen_l1 < 0.5);
    assert!(report.pct_optimal > 0.2);
}

#[test]
fn shared_clock_orders_query_completions() {
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 909).with_queries(4);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();
    let runs = run_concurrent(&catalog, &plans, &ConcurrentConfig::default());
    // All traces live on one shared axis: every pipeline window must fall
    // within the workload makespan.
    let makespan = runs.iter().map(|r| r.trace.total_time).fold(0.0, f64::max);
    for run in &runs {
        for &(a, b) in &run.trace.pipeline_windows {
            if a.is_finite() {
                assert!(a >= 0.0 && b <= makespan + 1e-6);
            }
        }
    }
}
