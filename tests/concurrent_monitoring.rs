//! Concurrency × estimation integration: traces from the multi-query
//! scheduler must flow through the estimator / feature / selection stack
//! unchanged, and live monitoring must neither perturb execution nor
//! behave nondeterministically.

use prosel::core::pipeline_runs::{collect_from_workload, records_from_run, CollectConfig};
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{
    run_concurrent, run_concurrent_tapped, Catalog, ConcurrentConfig, ExecConfig, ManualClock,
    QueryRun, TraceEvent,
};
use prosel::estimators::{EstimatorKind, PipelineObs};
use prosel::mart::BoostParams;
use prosel::monitor::{MonitorBuilder, MonitorConfig, SwitchEvent};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

#[test]
fn concurrent_traces_feed_the_full_stack() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 808).with_queries(18);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    let mut records = Vec::new();
    for (gi, group) in plans.chunks(3).enumerate() {
        let runs = run_concurrent(
            &catalog,
            group,
            &ConcurrentConfig {
                exec: ExecConfig { seed: gi as u64, ..ExecConfig::default() },
                ..Default::default()
            },
        );
        for (qi, run) in runs.iter().enumerate() {
            // Estimator curves stay probabilities on concurrent traces.
            let ctx = prosel::estimators::TraceCtx::new(run);
            for pid in 0..run.pipelines.len() {
                if let Some(obs) = PipelineObs::with_ctx(run, pid, &ctx) {
                    for kind in EstimatorKind::CANDIDATES {
                        for v in obs.curve(kind) {
                            assert!((0.0..=1.0).contains(&v), "{kind}: {v}");
                        }
                    }
                }
            }
            records_from_run(run, "concurrent", gi * 3 + qi, 5, &mut records);
        }
    }
    assert!(records.len() >= 18, "got {} records", records.len());

    // A selector trains and evaluates on concurrent data end to end.
    let ts = TrainingSet::from_records(&records);
    let cfg = SelectorConfig::default()
        .with_boost(BoostParams { iterations: 40, ..BoostParams::default() });
    let selector = EstimatorSelector::train(&ts, &cfg);
    let report = selector.evaluate(&ts);
    assert!(report.chosen_l1.is_finite() && report.chosen_l1 < 0.5);
    assert!(report.pct_optimal > 0.2);
}

/// Traces must be byte-for-byte identical: every counter of every
/// snapshot, the windows, and the totals.
fn assert_runs_identical(a: &[QueryRun], b: &[QueryRun], label: &str) {
    assert_eq!(a.len(), b.len());
    for (qi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.result_rows, y.result_rows, "{label}: q{qi} result rows");
        assert_eq!(
            x.trace.total_time.to_bits(),
            y.trace.total_time.to_bits(),
            "{label}: q{qi} total time"
        );
        assert_eq!(x.trace.final_k, y.trace.final_k, "{label}: q{qi} final K");
        assert_eq!(
            x.trace.final_materialized, y.trace.final_materialized,
            "{label}: q{qi} materialized"
        );
        assert_eq!(x.trace.pipeline_windows, y.trace.pipeline_windows, "{label}: q{qi} windows");
        assert_eq!(
            x.trace.snapshots, y.trace.snapshots,
            "{label}: q{qi} snapshot-by-snapshot trace"
        );
    }
}

#[test]
fn monitored_concurrent_execution_is_deterministic_and_nonintrusive() {
    // Train a small selector so the determinism claim covers online
    // re-selection decisions, not just the raw streams.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 1212).with_queries(16).with_scale(0.5);
    let w = materialize(&spec);
    let records = collect_from_workload(&w, &CollectConfig::default()).expect("records");
    let selector_text = EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig::default().with_boost(BoostParams::fast()),
    )
    .to_text();

    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().take(5).map(|q| builder.build(q).expect("plan")).collect();
    // A fresh manual wall clock per run makes the event streams (wall
    // stamps included) byte-comparable across runs; execution itself
    // never reads it.
    let make_cfg = || ConcurrentConfig {
        exec: ExecConfig {
            wall_clock: std::sync::Arc::new(ManualClock::stepping(0.0, 1e-3)),
            ..ExecConfig::default()
        },
        ..ConcurrentConfig::default()
    };
    let cfg = make_cfg();

    let run_monitored = || -> (Vec<QueryRun>, Vec<TraceEvent>, Vec<Vec<SwitchEvent>>, Vec<f64>) {
        let cfg = make_cfg();
        let selector = EstimatorSelector::from_text(&selector_text).expect("selector");
        let mut monitor = MonitorBuilder::with_selector(selector)
            .config(MonitorConfig { reselect_every: 3, ..MonitorConfig::default() })
            .build_monitor()
            .expect("build");
        for (qi, plan) in plans.iter().enumerate() {
            monitor.register(qi, plan);
        }
        let (tap, rx) = std::sync::mpsc::channel();
        let runs = run_concurrent_tapped(&catalog, &plans, &cfg, tap);
        let mut events = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            events.push(ev.clone());
            monitor.ingest(ev);
        }
        let switches: Vec<Vec<SwitchEvent>> = (0..plans.len())
            .map(|qi| monitor.switch_history(qi).expect("registered").to_vec())
            .collect();
        let progress: Vec<f64> =
            (0..plans.len()).map(|qi| monitor.query_progress(qi).expect("registered")).collect();
        (runs, events, switches, progress)
    };

    let (runs_a, events_a, switches_a, progress_a) = run_monitored();
    let (runs_b, events_b, switches_b, progress_b) = run_monitored();

    // Byte-for-byte determinism across runs: traces, the interleaved
    // snapshot stream, and the selector's online decisions.
    assert_runs_identical(&runs_a, &runs_b, "monitored-vs-monitored");
    assert_eq!(events_a.len(), events_b.len(), "event stream lengths differ");
    for (i, (x, y)) in events_a.iter().zip(&events_b).enumerate() {
        assert_eq!(x, y, "event {i} differs between identical monitored runs");
    }
    assert_eq!(switches_a, switches_b, "selector decisions differ across runs");
    assert_eq!(progress_a, progress_b);
    for p in &progress_a {
        assert_eq!(*p, 1.0, "finished queries must pin to exactly 1.0");
    }

    // And attaching the monitor must not have perturbed execution at all.
    let runs_plain = run_concurrent(&catalog, &plans, &cfg);
    assert_runs_identical(&runs_a, &runs_plain, "monitored-vs-unmonitored");
}

#[test]
fn shared_clock_orders_query_completions() {
    let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 909).with_queries(4);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();
    let runs = run_concurrent(&catalog, &plans, &ConcurrentConfig::default());
    // All traces live on one shared axis: every pipeline window must fall
    // within the workload makespan.
    let makespan = runs.iter().map(|r| r.trace.total_time).fold(0.0, f64::max);
    for run in &runs {
        for &(a, b) in &run.trace.pipeline_windows {
            if a.is_finite() {
                assert!(a >= 0.0 && b <= makespan + 1e-6);
            }
        }
    }
}
